//! `xvr` — command-line front end for the view-rewriting engine.
//!
//! ```text
//! xvr info        --doc FILE
//! xvr eval        --doc FILE [--engine naive|bn|bf] QUERY
//! xvr answer      --doc FILE [(--view XPATH)...] [--views-file FILE]
//!                 [--views-dir DIR] [--strategy bn|bf|mn|mv|hv|cb|hvi]
//!                 [--budget BYTES] [--show] [--explain]
//!                 (QUERY | --queries-file FILE [--jobs N])
//! xvr filter      --doc FILE [--views-file FILE] (--view XPATH)... QUERY
//! xvr materialize --doc FILE (--view XPATH)... [--views-file FILE]
//!                 [--budget BYTES] --out DIR
//! xvr generate    [--scale F] [--seed N] [--out FILE]
//! xvr advise      --doc FILE --workload FILE [--budget BYTES]
//!                 [--seed N] [--jobs N]
//! xvr serve       --doc FILE [(--view XPATH)...] [--views-file FILE]
//!                 [--views-dir DIR] [--budget BYTES]
//!                 [--addr HOST:PORT] [--jobs N]
//! xvr loadgen     --addr HOST:PORT --queries-file FILE
//!                 [--connections N] [--qps F] [--requests N]
//!                 [--strategy bn|bf|mn|mv|hv|cb|hvi] [--no-cache] [--out FILE]
//! ```
//!
//! `--views-file` and `--queries-file` are text files with one XPath per
//! line (blank lines and `#` comments ignored). `answer --queries-file`
//! freezes an [`EngineSnapshot`] and fans the batch out over `--jobs`
//! worker threads. The base strategies `bn`/`bf` answer straight from the
//! document and need no views. `serve` keeps a snapshot hot behind a TCP
//! listener and swaps it atomically on admin requests; `loadgen` drives
//! it open-loop and reports latency percentiles. Exit codes: 0 success,
//! 1 query not answerable, 2 usage error, 3 input error — the shared
//! [`xvr_core::QueryError`] mapping, identical to the serve protocol's
//! status codes.

use std::fmt::Write as _;
use std::io::Write as _;
use std::process::ExitCode;

use xvr_core::{
    parse_budget, Advisor, AdvisorConfig, Engine, EngineConfig, EngineSnapshot, QueryError,
    QueryOptions, Strategy, ViewCatalog, ViewSetSpec, Workload,
};
use xvr_xml::serializer::serialize_subtree;
use xvr_xml::{parse_document, DocStats, Document};

mod args;

use args::{ArgError, Parsed};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = run(&argv).and_then(|code| {
        // Surface a broken pipe hiding in the stdout buffer before
        // claiming success.
        match std::io::stdout().flush() {
            Ok(()) => Ok(code),
            Err(e) => Err(CliError::from_io(e)),
        }
    });
    match result {
        Ok(code) => code,
        // Downstream closed its end (e.g. `xvr eval ... | head -1`).
        // That's how pipelines normally end — exit 0, print nothing.
        Err(CliError::Pipe) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n");
            eprintln!("{}", USAGE);
            ExitCode::from(2)
        }
        Err(CliError::Input(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(3)
        }
        // The consolidated pipeline error: its own status() decides the
        // exit code, the same mapping the serve protocol uses.
        Err(CliError::Query(e)) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

const USAGE: &str = "usage:
  xvr info        --doc FILE
  xvr eval        --doc FILE [--engine naive|bn|bf] QUERY
  xvr answer      --doc FILE [(--view XPATH)...] [--views-file FILE]
                  [--views-dir DIR] [--strategy bn|bf|mn|mv|hv|cb|hvi]
                  [--budget BYTES] [--show] [--explain] [--report]
                  (QUERY | --queries-file FILE [--jobs N])
  xvr stats       --doc FILE [(--view XPATH)...] [--views-file FILE]
                  [--views-dir DIR] [--strategy bn|bf|mn|mv|hv|cb|hvi]
                  [--budget BYTES] --queries-file FILE [--jobs N]
  xvr filter      --doc FILE [--views-file FILE] (--view XPATH)... QUERY
  xvr materialize --doc FILE (--view XPATH)... [--views-file FILE]
                  [--budget BYTES] --out DIR
  xvr append      --doc FILE --at CODE --xml XML [--out FILE]
  xvr generate    [--scale F] [--seed N] [--out FILE]
  xvr advise      --doc FILE --workload FILE [--budget BYTES]
                  [--seed N] [--jobs N]
  xvr serve       --doc FILE [(--view XPATH)...] [--views-file FILE]
                  [--views-dir DIR] [--budget BYTES]
                  [--addr HOST:PORT] [--jobs N]
  xvr loadgen     --addr HOST:PORT --queries-file FILE
                  [--connections N] [--qps F] [--requests N]
                  [--strategy bn|bf|mn|mv|hv|cb|hvi] [--no-cache] [--out FILE]";

enum CliError {
    Usage(String),
    Input(String),
    /// Any pipeline failure, classified by [`QueryError::status`]; the
    /// exit code comes from the same shared mapping the serve protocol
    /// uses for its status codes.
    Query(QueryError),
    /// Stdout's reader went away (`EPIPE`). Not an error: pipelines like
    /// `xvr eval ... | head -1` close our pipe as soon as they have what
    /// they need, so this maps to a quiet, successful exit.
    Pipe,
}

impl CliError {
    fn from_io(e: std::io::Error) -> CliError {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            CliError::Pipe
        } else {
            CliError::Input(format!("stdout: {e}"))
        }
    }
}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> CliError {
        CliError::Usage(e.0)
    }
}

impl From<QueryError> for CliError {
    fn from(e: QueryError) -> CliError {
        CliError::Query(e)
    }
}

/// Write to stdout, mapping io errors (notably `EPIPE`) into [`CliError`]
/// instead of the panic `outln!` raises.
fn out_fmt(args: std::fmt::Arguments<'_>, newline: bool) -> Result<(), CliError> {
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    let res = if newline {
        lock.write_fmt(format_args!("{args}\n"))
    } else {
        lock.write_fmt(args)
    };
    res.map_err(CliError::from_io)
}

/// `outln!` onto stdout that propagates a closed pipe as
/// [`CliError::Pipe`] (use inside functions returning `Result<_, CliError>`).
macro_rules! outln {
    ($($arg:tt)*) => { out_fmt(format_args!($($arg)*), true)? };
}

/// `out!` counterpart of [`outln!`].
macro_rules! out {
    ($($arg:tt)*) => { out_fmt(format_args!($($arg)*), false)? };
}

mod loadgen;
mod serve;

fn run(argv: &[String]) -> Result<ExitCode, CliError> {
    let Some((command, rest)) = argv.split_first() else {
        return Err(CliError::Usage("missing command".into()));
    };
    match command.as_str() {
        "info" => info(rest),
        "eval" => eval(rest),
        "answer" => answer(rest),
        "stats" => stats(rest),
        "filter" => filter(rest),
        "generate" => generate(rest),
        "materialize" => materialize(rest),
        "append" => append(rest),
        "advise" => advise(rest),
        "serve" => serve::serve(rest),
        "loadgen" => loadgen::loadgen(rest),
        "--help" | "-h" | "help" => {
            outln!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

/// Read a workload file: one XPath per line, blank lines and `#`
/// comments ignored (the shared [`xvr_core::clean_lines`] format).
/// Shared by `answer --queries-file`, `stats`, `advise`, and `loadgen`.
fn read_workload(path: &str) -> Result<Vec<String>, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Input(format!("cannot read {path}: {e}")))?;
    Ok(xvr_core::parse_views_text(&text))
}

fn load_doc(path: &str) -> Result<Document, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Input(format!("cannot read {path}: {e}")))?;
    parse_document(&text).map_err(|e| CliError::Input(format!("{path}: {e}")))
}

/// The shared `--view`/`--views-file`/`--views-dir`/`--budget` flags as
/// a declarative [`ViewSetSpec`] — the one place the CLI's view-set
/// vocabulary is interpreted, whichever subcommand accepts it.
fn view_spec(parsed: &Parsed) -> Result<ViewSetSpec, CliError> {
    let mut spec = ViewSetSpec::new();
    spec.inline = parsed.multi("view").to_vec();
    if let Some(file) = parsed.opt("views-file") {
        spec = spec.with_views_file(file);
    }
    if let Some(dir) = parsed.opt("views-dir") {
        spec = spec.with_views_dir(dir);
    }
    if let Some(b) = parsed.opt("budget") {
        spec = spec.with_budget(parse_budget(b)?);
    }
    Ok(spec)
}

/// Views from repeated `--view` flags plus an optional `--views-file`,
/// resolved through the catalog (one line format, one error surface).
fn collect_views(parsed: &Parsed) -> Result<Vec<String>, CliError> {
    Ok(view_spec(parsed)?.resolve()?.sources().to_vec())
}

fn info(argv: &[String]) -> Result<ExitCode, CliError> {
    let parsed = Parsed::parse(argv, &["doc"], &[], &[], &[])?;
    let doc = load_doc(parsed.req("doc")?)?;
    let stats = DocStats::compute(&doc.tree, &doc.labels);
    outln!("nodes:            {}", stats.nodes);
    outln!("height:           {}", stats.height);
    outln!("avg depth:        {:.2}", stats.avg_depth);
    outln!("leaves:           {}", stats.leaves);
    outln!("max fanout:       {}", stats.max_fanout);
    outln!("avg fanout:       {:.2}", stats.avg_fanout);
    outln!("text nodes:       {}", stats.text_nodes);
    outln!("attributed nodes: {}", stats.attributed_nodes);
    outln!("distinct labels:  {}", stats.label_histogram.len());
    outln!("top labels:");
    for &(label, count) in stats.label_histogram.iter().take(10) {
        outln!("  {:<20} {}", doc.labels.name(label), count);
    }
    Ok(ExitCode::SUCCESS)
}

fn eval(argv: &[String]) -> Result<ExitCode, CliError> {
    let parsed = Parsed::parse(argv, &["doc"], &["engine"], &[], &[])?;
    let doc = load_doc(parsed.req("doc")?)?;
    let query_src = parsed.positional()?;
    let mut labels = doc.labels.clone();
    let q = xvr_pattern::parse_pattern_with(query_src, &mut labels)
        .map_err(|e| CliError::Input(format!("query: {e}")))?;
    let nodes = match parsed.opt("engine").unwrap_or("naive") {
        "naive" => xvr_pattern::eval(&q, &doc.tree),
        "bn" => {
            let idx = xvr_xml::NodeIndex::build(&doc.tree, &doc.labels);
            xvr_pattern::eval_bn(&q, &doc.tree, &idx)
        }
        "bf" => {
            let idx = xvr_xml::PathIndex::build(&doc.tree, &doc.labels);
            xvr_pattern::eval_bf(&q, &doc, &idx)
        }
        other => return Err(CliError::Usage(format!("unknown engine `{other}`"))),
    };
    for n in &nodes {
        outln!(
            "{}\t{}",
            doc.dewey.code_of(&doc.tree, *n),
            serialize_subtree(&doc.tree, &doc.labels, *n)
        );
    }
    eprintln!("{} result(s)", nodes.len());
    Ok(ExitCode::SUCCESS)
}

/// The strategy vocabulary, for the near-miss suggestions below.
const STRATEGY_NAMES: [&str; 7] = ["bn", "bf", "mn", "mv", "hv", "cb", "hvi"];

/// Levenshtein distance, for suggesting a strategy on a typo. Inputs are
/// tiny (strategy names), so the quadratic DP is fine.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let subst = prev[j] + usize::from(ca != cb);
            row.push(subst.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

/// Parse a strategy name: whitespace- and case-insensitive, with a
/// "did you mean" suggestion when the name is one edit away from a
/// valid one (`"MV"`, `"mv "`, `"nv"` all resolve or explain themselves).
fn strategy_of(name: &str) -> Result<Strategy, CliError> {
    let canon = name.trim().to_ascii_lowercase();
    if let Some(s) = Strategy::parse(&canon) {
        return Ok(s);
    }
    let mut msg = format!(
        "unknown strategy `{name}` (expected one of {})",
        STRATEGY_NAMES.join(", ")
    );
    let near = STRATEGY_NAMES
        .iter()
        .map(|c| (edit_distance(&canon, c), *c))
        .min()
        .filter(|&(d, _)| d <= 1);
    if let Some((_, suggestion)) = near {
        let _ = write!(msg, " — did you mean `{suggestion}`?");
    }
    Err(CliError::Usage(msg))
}

/// Build an engine from the shared `--doc`/`--view`/`--views-file`/
/// `--views-dir`/`--budget` flags through a [`ViewCatalog`] (used by
/// `answer`, `stats`, and `serve`). The returned catalog carries the
/// replayable view sources (`serve` hands them to `swap-doc`).
fn engine_with_views(parsed: &Parsed) -> Result<(Engine, ViewCatalog), CliError> {
    let doc = load_doc(parsed.req("doc")?)?;
    let catalog = view_spec(parsed)?.resolve()?;
    let (engine, dir_loads) = catalog.build_engine(doc, EngineConfig::default())?;
    for (dir, loaded) in &dir_loads {
        eprintln!("loaded {} view(s) from {}", loaded.len(), dir.display());
    }
    Ok((engine, catalog))
}

fn answer(argv: &[String]) -> Result<ExitCode, CliError> {
    let parsed = Parsed::parse(
        argv,
        &["doc"],
        &[
            "strategy",
            "budget",
            "views-file",
            "views-dir",
            "queries-file",
            "jobs",
        ],
        &["view"],
        &["show", "explain", "report"],
    )?;
    let strategy = strategy_of(parsed.opt("strategy").unwrap_or("hv"))?;
    let (engine, _) = engine_with_views(&parsed)?;
    let base = matches!(strategy, Strategy::Bn | Strategy::Bf);
    if engine.views().is_empty() && !base {
        return Err(CliError::Usage(
            "answer needs --view, --views-file or --views-dir \
             (only bn/bf answer from the document alone)"
                .into(),
        ));
    }
    let snap = engine.snapshot();
    match parsed.opt("queries-file") {
        Some(file) => answer_batch(&parsed, &snap, strategy, file),
        None => answer_single(&parsed, &snap, strategy),
    }
}

fn answer_single(
    parsed: &Parsed,
    snap: &EngineSnapshot,
    strategy: Strategy,
) -> Result<ExitCode, CliError> {
    let query_src = parsed.positional()?;
    let q = snap
        .parse(query_src)
        .map_err(|e| CliError::Query(e.into()))?;
    if parsed.flag("explain") && !matches!(strategy, Strategy::Bn | Strategy::Bf) {
        match snap.explain(&q, strategy) {
            Ok(ex) => eprintln!("{ex}"),
            Err(xvr_core::AnswerError::NotAnswerable) => {}
            Err(e) => return Err(CliError::Query(e.into())),
        }
    }
    let mut options = QueryOptions::strategy(strategy);
    if parsed.flag("report") {
        options = options.with_trace().with_metrics();
    }
    let outcome = snap.query(&q, &options);
    if let Some(report) = &outcome.report {
        eprintln!("{report}");
    }
    match outcome.answer {
        Ok(a) => {
            let doc = snap.doc();
            for code in &a.codes {
                if parsed.flag("show") {
                    let shown = doc
                        .node_by_code(code)
                        .map(|n| serialize_subtree(&doc.tree, &doc.labels, n))
                        .unwrap_or_default();
                    outln!("{code}\t{shown}");
                } else {
                    outln!("{code}");
                }
            }
            let mut summary = String::new();
            let _ = write!(
                summary,
                "{} result(s) via {} using {} view(s)",
                a.codes.len(),
                a.strategy,
                a.views_used.len()
            );
            if !a.views_used.is_empty() {
                let names: Vec<String> = a
                    .views_used
                    .iter()
                    .map(|&v| {
                        snap.views()
                            .view(v)
                            .pattern
                            .display(snap.labels())
                            .to_string()
                    })
                    .collect();
                let _ = write!(summary, ": {}", names.join(", "));
            }
            let _ = write!(
                summary,
                " ({}µs filter + {}µs select + {}µs rewrite)",
                a.timings.filter_us, a.timings.selection_us, a.timings.rewrite_us
            );
            eprintln!("{summary}");
            Ok(ExitCode::SUCCESS)
        }
        // NotAnswerable exits 1, rewrite failures 3 — the shared
        // QueryError mapping decides, not this command.
        Err(e) => Err(CliError::Query(e.into())),
    }
}

/// `--queries-file` mode: answer every query in the file over one shared
/// snapshot, fanned out over `--jobs` worker threads. One stdout line per
/// query: `QUERY<TAB>COUNT<TAB>codes…` (or `unanswerable`).
fn answer_batch(
    parsed: &Parsed,
    snap: &EngineSnapshot,
    strategy: Strategy,
    file: &str,
) -> Result<ExitCode, CliError> {
    if parsed.positional().is_ok() {
        return Err(CliError::Usage(
            "--queries-file replaces the positional query; give one or the other".into(),
        ));
    }
    let jobs: usize = match parsed.opt("jobs") {
        Some(j) => j
            .parse()
            .ok()
            .filter(|&j| j >= 1)
            .ok_or_else(|| CliError::Usage("--jobs must be a positive integer".into()))?,
        None => 1,
    };
    let sources = read_workload(file)?;
    let queries: Vec<_> = sources
        .iter()
        .map(|src| {
            snap.parse(src)
                .map_err(|e| CliError::Input(format!("query `{src}`: {e}")))
        })
        .collect::<Result<_, _>>()?;
    let mut options = QueryOptions::strategy(strategy);
    // HvIntersect always meters, so the coverage line below can say how
    // many answers came through the intersection fallback.
    if parsed.flag("report") || strategy == Strategy::HvIntersect {
        options = options.with_metrics();
    }
    let batch = snap.query_batch(&queries, &options, jobs);
    let mut unanswerable = 0usize;
    for (src, outcome) in sources.iter().zip(&batch.answers) {
        match outcome {
            Ok(a) => {
                let codes: Vec<String> = a.codes.iter().map(|c| c.to_string()).collect();
                outln!("{src}\t{}\t{}", a.codes.len(), codes.join(" "));
            }
            Err(xvr_core::AnswerError::NotAnswerable) => {
                unanswerable += 1;
                outln!("{src}\tunanswerable\t");
            }
            Err(e) => return Err(CliError::Query(e.clone().into())),
        }
    }
    eprintln!(
        "{}/{} answered via {} with {} job(s) in {}µs ({:.0} q/s; work: {}µs filter + {}µs select + {}µs rewrite)",
        batch.answered(),
        batch.answers.len(),
        strategy,
        batch.jobs,
        batch.wall_us,
        batch.qps(),
        batch.total.filter_us,
        batch.total.selection_us,
        batch.total.rewrite_us,
    );
    if strategy == Strategy::HvIntersect {
        eprintln!(
            "coverage: {}/{} answered, {} via the intersection fallback",
            batch.answered(),
            batch.answers.len(),
            batch.counters.get(xvr_core::Counter::IntersectAnswered),
        );
    }
    if parsed.flag("report") {
        eprintln!("batch counters (merged across {} job(s)):", batch.jobs);
        eprintln!("{}", batch.counters);
    }
    Ok(if unanswerable == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

/// `xvr stats`: run a query workload with metrics collection on, then
/// print the snapshot's cumulative [`xvr_core::MetricsReport`] — query
/// counts, mean stage timings, and the full counter inventory.
fn stats(argv: &[String]) -> Result<ExitCode, CliError> {
    let parsed = Parsed::parse(
        argv,
        &["doc", "queries-file"],
        &["strategy", "budget", "views-file", "views-dir", "jobs"],
        &["view"],
        &[],
    )?;
    let strategy = strategy_of(parsed.opt("strategy").unwrap_or("hv"))?;
    let (engine, _) = engine_with_views(&parsed)?;
    let base = matches!(strategy, Strategy::Bn | Strategy::Bf);
    if engine.views().is_empty() && !base {
        return Err(CliError::Usage(
            "stats needs --view, --views-file or --views-dir \
             (only bn/bf answer from the document alone)"
                .into(),
        ));
    }
    let jobs: usize = match parsed.opt("jobs") {
        Some(j) => j
            .parse()
            .ok()
            .filter(|&j| j >= 1)
            .ok_or_else(|| CliError::Usage("--jobs must be a positive integer".into()))?,
        None => 1,
    };
    let snap = engine.snapshot();
    let queries: Vec<_> = read_workload(parsed.req("queries-file")?)?
        .iter()
        .map(|src| {
            snap.parse(src)
                .map_err(|e| CliError::Input(format!("query `{src}`: {e}")))
        })
        .collect::<Result<_, _>>()?;
    let options = QueryOptions::strategy(strategy).with_metrics();
    let batch = snap.query_batch(&queries, &options, jobs);
    outln!(
        "workload: {} quer{} via {strategy}, {} answered, {} job(s), {}µs wall",
        batch.answers.len(),
        if batch.answers.len() == 1 { "y" } else { "ies" },
        batch.answered(),
        batch.jobs,
        batch.wall_us
    );
    if strategy == Strategy::HvIntersect {
        outln!(
            "coverage: {}/{} answered, {} via the intersection fallback",
            batch.answered(),
            batch.answers.len(),
            batch.counters.get(xvr_core::Counter::IntersectAnswered),
        );
    }
    outln!("{}", snap.metrics().report());
    Ok(ExitCode::SUCCESS)
}

fn filter(argv: &[String]) -> Result<ExitCode, CliError> {
    let parsed = Parsed::parse(argv, &["doc"], &["views-file"], &["view"], &[])?;
    let doc = load_doc(parsed.req("doc")?)?;
    let query_src = parsed.positional()?;
    let views = collect_views(&parsed)?;
    let mut engine = Engine::new(doc, EngineConfig::default());
    for v in &views {
        engine
            .add_view_str(v)
            .map_err(|e| CliError::Input(format!("view `{v}`: {e}")))?;
    }
    let q = engine
        .parse(query_src)
        .map_err(|e| CliError::Input(format!("query: {e}")))?;
    let outcome = engine.filter(&q);
    outln!(
        "{} of {} views survive filtering:",
        outcome.candidates.len(),
        engine.views().len()
    );
    for &v in &outcome.candidates {
        outln!(
            "  {}",
            engine.views().view(v).pattern.display(engine.labels())
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn materialize(argv: &[String]) -> Result<ExitCode, CliError> {
    let parsed = Parsed::parse(
        argv,
        &["doc", "out"],
        &["budget", "views-file"],
        &["view"],
        &[],
    )?;
    let doc = load_doc(parsed.req("doc")?)?;
    let views = collect_views(&parsed)?;
    if views.is_empty() {
        return Err(CliError::Usage(
            "materialize needs --view or --views-file".into(),
        ));
    }
    let budget = match parsed.opt("budget") {
        Some(b) => parse_budget(b)?,
        None => usize::MAX,
    };
    let mut engine = Engine::new(
        doc,
        EngineConfig {
            fragment_budget: budget,
            ..EngineConfig::default()
        },
    );
    for v in &views {
        let id = engine
            .add_view_str(v)
            .map_err(|e| CliError::Input(format!("view `{v}`: {e}")))?;
        let mv = engine.store().get(id).unwrap();
        eprintln!(
            "{v}: {} fragment(s), {} bytes{}",
            mv.fragments.len(),
            mv.size_bytes(),
            if mv.complete() { "" } else { " (TRUNCATED)" }
        );
    }
    let out = parsed.req("out")?;
    engine
        .save_views(std::path::Path::new(out))
        .map_err(|e| CliError::Input(format!("saving to {out}: {e}")))?;
    eprintln!("saved {} view(s) to {out}", views.len());
    Ok(ExitCode::SUCCESS)
}

fn append(argv: &[String]) -> Result<ExitCode, CliError> {
    let parsed = Parsed::parse(argv, &["doc", "at", "xml"], &["out"], &[], &[])?;
    let doc = load_doc(parsed.req("doc")?)?;
    let code: xvr_xml::DeweyCode = parsed
        .req("at")?
        .parse()
        .map_err(|e| CliError::Usage(format!("--at: {e}")))?;
    let mut engine = Engine::new(doc, EngineConfig::default());
    let stats = engine
        .append_xml(&code, parsed.req("xml")?)
        .map_err(|e| CliError::Input(e.to_string()))?;
    eprintln!(
        "appended under {code}: {:?} (document now {} nodes)",
        stats.stability,
        engine.doc().len()
    );
    let out = parsed.opt("out").map(str::to_owned);
    let target = out.as_deref().unwrap_or(parsed.req("doc")?);
    let xml = xvr_xml::serializer::serialize_pretty(&engine.doc().tree, engine.labels());
    std::fs::write(target, xml)
        .map_err(|e| CliError::Input(format!("cannot write {target}: {e}")))?;
    eprintln!("wrote {target}");
    Ok(ExitCode::SUCCESS)
}

/// `xvr advise`: propose a view set for a workload under a byte budget.
///
/// Reads the workload (one XPath per line, duplicates fold into
/// frequencies), runs the [`Advisor`] over the document, and prints the
/// winning proposal: one stdout line per view — `XPATH<TAB>BYTES<TAB>
/// WEIGHT`, ready to paste into a `--views-file` — with the scored
/// summary on stderr. Exit 1 when the proposal covers none of the
/// workload (nothing materializable under the budget helps).
fn advise(argv: &[String]) -> Result<ExitCode, CliError> {
    let parsed = Parsed::parse(
        argv,
        &["doc", "workload"],
        &["budget", "seed", "jobs"],
        &[],
        &[],
    )?;
    let doc = load_doc(parsed.req("doc")?)?;
    let path = parsed.req("workload")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Input(format!("cannot read {path}: {e}")))?;
    let workload = Workload::parse(&text)?;
    let mut config = AdvisorConfig::default();
    if let Some(b) = parsed.opt("budget") {
        config.budget = parse_budget(b)?;
    }
    if let Some(s) = parsed.opt("seed") {
        config.seed = s
            .parse()
            .map_err(|_| CliError::Usage("--seed must be an integer".into()))?;
    }
    if let Some(j) = parsed.opt("jobs") {
        config.jobs = j
            .parse()
            .ok()
            .filter(|&j| j >= 1)
            .ok_or_else(|| CliError::Usage("--jobs must be a positive integer".into()))?;
    }
    let proposal = Advisor::new(config).advise(&doc, &workload)?;
    for v in &proposal.views {
        outln!("{}\t{}\t{}", v.xpath, v.bytes, v.weight);
    }
    eprintln!("{proposal}");
    Ok(if proposal.score.answered_weight > 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn generate(argv: &[String]) -> Result<ExitCode, CliError> {
    let parsed = Parsed::parse(argv, &[], &["scale", "seed", "out"], &[], &[])?;
    let scale: f64 = parsed
        .opt("scale")
        .unwrap_or("0.001")
        .parse()
        .map_err(|_| CliError::Usage("--scale must be a number".into()))?;
    let seed: u64 = parsed
        .opt("seed")
        .unwrap_or("0")
        .parse()
        .map_err(|_| CliError::Usage("--seed must be an integer".into()))?;
    let doc =
        xvr_xml::generator::generate(&xvr_xml::generator::Config::scale(scale).with_seed(seed));
    let xml = xvr_xml::serializer::serialize_pretty(&doc.tree, &doc.labels);
    match parsed.opt("out") {
        Some(path) => {
            std::fs::write(path, xml)
                .map_err(|e| CliError::Input(format!("cannot write {path}: {e}")))?;
            eprintln!("wrote {} nodes to {path}", doc.len());
        }
        None => out!("{xml}"),
    }
    Ok(ExitCode::SUCCESS)
}
