//! `xvr serve`: the long-running query service.
//!
//! Builds an engine exactly like `xvr answer` (shared `--doc`/`--view`/
//! `--views-file`/`--views-dir`/`--budget` flags), binds a TCP listener,
//! prints `listening on ADDR` on stdout (scripts wait for that line and
//! read the actual port back when `--addr` ends in `:0`), then serves the
//! length-prefixed wire protocol until a `shutdown` request arrives.
//! Queries run on an atomically swappable snapshot: `add-view` and
//! `swap-doc` admin requests publish a new snapshot without interrupting
//! in-flight queries.

use std::process::ExitCode;

use xvr_core::{Server, ServerConfig};

use crate::args::Parsed;
use crate::{engine_with_views, out_fmt, CliError};

pub fn serve(argv: &[String]) -> Result<ExitCode, CliError> {
    let parsed = Parsed::parse(
        argv,
        &["doc"],
        &["addr", "jobs", "budget", "views-file", "views-dir"],
        &["view"],
        &[],
    )?;
    // The catalog carries the replayable view sources for swap-doc: the
    // --view/--views-file text. Views loaded from --views-dir are
    // materialized artifacts without source text and are not replayed
    // across a document swap.
    let (engine, catalog) = engine_with_views(&parsed)?;
    let view_sources = catalog.sources().to_vec();
    let jobs: usize = match parsed.opt("jobs") {
        Some(j) => j
            .parse()
            .ok()
            .filter(|&j| j >= 1)
            .ok_or_else(|| CliError::Usage("--jobs must be a positive integer".into()))?,
        None => 4,
    };
    let addr = parsed.opt("addr").unwrap_or("127.0.0.1:7878");
    let server = Server::bind(
        addr,
        engine,
        view_sources,
        ServerConfig {
            jobs,
            force_metrics: true,
        },
    )?;
    // Stdout (stderr carries diagnostics): wrappers parse this line for
    // the kernel-assigned port. Rust's stdout is line-buffered, so the
    // newline flushes it before the accept loop blocks.
    outln!("listening on {}", server.local_addr());
    eprintln!("serving with {jobs} batch job(s); send a shutdown request to stop");
    server.run()?;
    eprintln!("server stopped");
    Ok(ExitCode::SUCCESS)
}
