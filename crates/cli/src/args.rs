//! Minimal dependency-free argument parsing for the `xvr` binary.
//!
//! A command declares which option names it accepts (required single-value,
//! optional single-value, and repeatable/boolean); everything else is the
//! single positional argument (the query).

use std::collections::HashMap;

/// A usage problem (unknown flag, missing value, …).
#[derive(Debug)]
pub struct ArgError(pub String);

/// Parsed arguments of one subcommand invocation.
pub struct Parsed {
    single: HashMap<String, String>,
    multi: HashMap<String, Vec<String>>,
    flags: Vec<String>,
    positionals: Vec<String>,
}

impl Parsed {
    /// Parse `argv` against the declared option names.
    ///
    /// * `required` / `optional`: options taking exactly one value.
    /// * `repeated`: options taking one value, allowed multiple times.
    /// * `bare_flags`: boolean options taking no value.
    pub fn parse(
        argv: &[String],
        required: &[&str],
        optional: &[&str],
        repeated: &[&str],
        bare_flags: &[&str],
    ) -> Result<Parsed, ArgError> {
        let mut parsed = Parsed {
            single: HashMap::new(),
            multi: HashMap::new(),
            flags: Vec::new(),
            positionals: Vec::new(),
        };
        let mut i = 0;
        while i < argv.len() {
            let token = &argv[i];
            if let Some(name) = token.strip_prefix("--") {
                if required.contains(&name) || optional.contains(&name) {
                    let value = argv
                        .get(i + 1)
                        .ok_or_else(|| ArgError(format!("--{name} needs a value")))?;
                    if parsed
                        .single
                        .insert(name.to_owned(), value.clone())
                        .is_some()
                    {
                        return Err(ArgError(format!("--{name} given twice")));
                    }
                    i += 2;
                } else if repeated.contains(&name) {
                    let value = argv
                        .get(i + 1)
                        .ok_or_else(|| ArgError(format!("--{name} needs a value")))?;
                    parsed
                        .multi
                        .entry(name.to_owned())
                        .or_default()
                        .push(value.clone());
                    i += 2;
                } else if bare_flags.contains(&name) {
                    parsed.flags.push(name.to_owned());
                    i += 1;
                } else {
                    return Err(ArgError(format!("unknown option --{name}")));
                }
            } else {
                parsed.positionals.push(token.clone());
                i += 1;
            }
        }
        for name in required {
            if !parsed.single.contains_key(*name) {
                return Err(ArgError(format!("missing required option --{name}")));
            }
        }
        Ok(parsed)
    }

    /// The value of a required option (checked at parse time).
    pub fn req(&self, name: &str) -> Result<&str, ArgError> {
        self.single
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| ArgError(format!("missing required option --{name}")))
    }

    /// The value of an optional option.
    pub fn opt(&self, name: &str) -> Option<&str> {
        self.single.get(name).map(String::as_str)
    }

    /// All values of a repeatable option.
    pub fn multi(&self, name: &str) -> &[String] {
        self.multi.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether a bare flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Exactly one positional argument (the query).
    pub fn positional(&self) -> Result<&str, ArgError> {
        match self.positionals.as_slice() {
            [one] => Ok(one),
            [] => Err(ArgError("missing the query argument".into())),
            more => Err(ArgError(format!(
                "expected one query argument, got {} (quote the XPath)",
                more.len()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_mixed_options() {
        let p = Parsed::parse(
            &argv(&[
                "--doc", "d.xml", "--view", "/a/b", "--view", "/a/c", "--show", "//q",
            ]),
            &["doc"],
            &["strategy"],
            &["view"],
            &["show"],
        )
        .unwrap();
        assert_eq!(p.req("doc").unwrap(), "d.xml");
        assert_eq!(p.multi("view"), &["/a/b".to_string(), "/a/c".to_string()]);
        assert!(p.flag("show"));
        assert!(!p.flag("view"));
        assert_eq!(p.positional().unwrap(), "//q");
        assert_eq!(p.opt("strategy"), None);
    }

    #[test]
    fn rejects_unknown_and_missing() {
        assert!(Parsed::parse(&argv(&["--nope"]), &[], &[], &[], &[]).is_err());
        assert!(Parsed::parse(&argv(&[]), &["doc"], &[], &[], &[]).is_err());
        assert!(Parsed::parse(&argv(&["--doc"]), &["doc"], &[], &[], &[]).is_err());
        assert!(Parsed::parse(
            &argv(&["--doc", "a", "--doc", "b"]),
            &["doc"],
            &[],
            &[],
            &[]
        )
        .is_err());
    }

    #[test]
    fn positional_cardinality() {
        let none = Parsed::parse(&argv(&["--doc", "x"]), &["doc"], &[], &[], &[]).unwrap();
        assert!(none.positional().is_err());
        let two = Parsed::parse(&argv(&["a", "b"]), &[], &[], &[], &[]).unwrap();
        assert!(two.positional().is_err());
    }
}
