/root/repo/target/release/examples/auction_dashboard-07b6e1b2081684eb.d: crates/core/../../examples/auction_dashboard.rs

/root/repo/target/release/examples/auction_dashboard-07b6e1b2081684eb: crates/core/../../examples/auction_dashboard.rs

crates/core/../../examples/auction_dashboard.rs:
