/root/repo/target/release/examples/quickstart-0f132f7cece49a2f.d: crates/core/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-0f132f7cece49a2f: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
