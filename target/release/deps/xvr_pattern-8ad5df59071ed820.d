/root/repo/target/release/deps/xvr_pattern-8ad5df59071ed820.d: crates/pattern/src/lib.rs crates/pattern/src/containment.rs crates/pattern/src/decompose.rs crates/pattern/src/eval.rs crates/pattern/src/generator.rs crates/pattern/src/holistic.rs crates/pattern/src/hom.rs crates/pattern/src/minimize.rs crates/pattern/src/normalize.rs crates/pattern/src/parse.rs crates/pattern/src/paths.rs crates/pattern/src/pattern.rs crates/pattern/src/region_eval.rs

/root/repo/target/release/deps/libxvr_pattern-8ad5df59071ed820.rlib: crates/pattern/src/lib.rs crates/pattern/src/containment.rs crates/pattern/src/decompose.rs crates/pattern/src/eval.rs crates/pattern/src/generator.rs crates/pattern/src/holistic.rs crates/pattern/src/hom.rs crates/pattern/src/minimize.rs crates/pattern/src/normalize.rs crates/pattern/src/parse.rs crates/pattern/src/paths.rs crates/pattern/src/pattern.rs crates/pattern/src/region_eval.rs

/root/repo/target/release/deps/libxvr_pattern-8ad5df59071ed820.rmeta: crates/pattern/src/lib.rs crates/pattern/src/containment.rs crates/pattern/src/decompose.rs crates/pattern/src/eval.rs crates/pattern/src/generator.rs crates/pattern/src/holistic.rs crates/pattern/src/hom.rs crates/pattern/src/minimize.rs crates/pattern/src/normalize.rs crates/pattern/src/parse.rs crates/pattern/src/paths.rs crates/pattern/src/pattern.rs crates/pattern/src/region_eval.rs

crates/pattern/src/lib.rs:
crates/pattern/src/containment.rs:
crates/pattern/src/decompose.rs:
crates/pattern/src/eval.rs:
crates/pattern/src/generator.rs:
crates/pattern/src/holistic.rs:
crates/pattern/src/hom.rs:
crates/pattern/src/minimize.rs:
crates/pattern/src/normalize.rs:
crates/pattern/src/parse.rs:
crates/pattern/src/paths.rs:
crates/pattern/src/pattern.rs:
crates/pattern/src/region_eval.rs:
