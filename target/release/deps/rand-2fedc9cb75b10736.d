/root/repo/target/release/deps/rand-2fedc9cb75b10736.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-2fedc9cb75b10736.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-2fedc9cb75b10736.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
