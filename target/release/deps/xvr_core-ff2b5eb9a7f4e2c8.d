/root/repo/target/release/deps/xvr_core-ff2b5eb9a7f4e2c8.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/explain.rs crates/core/src/filter.rs crates/core/src/leafcover.rs crates/core/src/materialize.rs crates/core/src/nfa.rs crates/core/src/rewrite.rs crates/core/src/select.rs crates/core/src/snapshot.rs crates/core/src/view.rs

/root/repo/target/release/deps/libxvr_core-ff2b5eb9a7f4e2c8.rlib: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/explain.rs crates/core/src/filter.rs crates/core/src/leafcover.rs crates/core/src/materialize.rs crates/core/src/nfa.rs crates/core/src/rewrite.rs crates/core/src/select.rs crates/core/src/snapshot.rs crates/core/src/view.rs

/root/repo/target/release/deps/libxvr_core-ff2b5eb9a7f4e2c8.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/explain.rs crates/core/src/filter.rs crates/core/src/leafcover.rs crates/core/src/materialize.rs crates/core/src/nfa.rs crates/core/src/rewrite.rs crates/core/src/select.rs crates/core/src/snapshot.rs crates/core/src/view.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/explain.rs:
crates/core/src/filter.rs:
crates/core/src/leafcover.rs:
crates/core/src/materialize.rs:
crates/core/src/nfa.rs:
crates/core/src/rewrite.rs:
crates/core/src/select.rs:
crates/core/src/snapshot.rs:
crates/core/src/view.rs:
