/root/repo/target/release/deps/criterion-42af21d2b0b3b719.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-42af21d2b0b3b719.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-42af21d2b0b3b719.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
