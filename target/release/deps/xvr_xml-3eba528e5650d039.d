/root/repo/target/release/deps/xvr_xml-3eba528e5650d039.d: crates/xml/src/lib.rs crates/xml/src/dewey.rs crates/xml/src/error.rs crates/xml/src/fragment.rs crates/xml/src/fst.rs crates/xml/src/generator.rs crates/xml/src/index.rs crates/xml/src/label.rs crates/xml/src/parser.rs crates/xml/src/region.rs crates/xml/src/samples.rs crates/xml/src/serializer.rs crates/xml/src/stats.rs crates/xml/src/tree.rs

/root/repo/target/release/deps/libxvr_xml-3eba528e5650d039.rlib: crates/xml/src/lib.rs crates/xml/src/dewey.rs crates/xml/src/error.rs crates/xml/src/fragment.rs crates/xml/src/fst.rs crates/xml/src/generator.rs crates/xml/src/index.rs crates/xml/src/label.rs crates/xml/src/parser.rs crates/xml/src/region.rs crates/xml/src/samples.rs crates/xml/src/serializer.rs crates/xml/src/stats.rs crates/xml/src/tree.rs

/root/repo/target/release/deps/libxvr_xml-3eba528e5650d039.rmeta: crates/xml/src/lib.rs crates/xml/src/dewey.rs crates/xml/src/error.rs crates/xml/src/fragment.rs crates/xml/src/fst.rs crates/xml/src/generator.rs crates/xml/src/index.rs crates/xml/src/label.rs crates/xml/src/parser.rs crates/xml/src/region.rs crates/xml/src/samples.rs crates/xml/src/serializer.rs crates/xml/src/stats.rs crates/xml/src/tree.rs

crates/xml/src/lib.rs:
crates/xml/src/dewey.rs:
crates/xml/src/error.rs:
crates/xml/src/fragment.rs:
crates/xml/src/fst.rs:
crates/xml/src/generator.rs:
crates/xml/src/index.rs:
crates/xml/src/label.rs:
crates/xml/src/parser.rs:
crates/xml/src/region.rs:
crates/xml/src/samples.rs:
crates/xml/src/serializer.rs:
crates/xml/src/stats.rs:
crates/xml/src/tree.rs:
