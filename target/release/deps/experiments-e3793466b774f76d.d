/root/repo/target/release/deps/experiments-e3793466b774f76d.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-e3793466b774f76d: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
