/root/repo/target/release/deps/xvr-a760b2455c4be101.d: crates/cli/src/main.rs crates/cli/src/args.rs

/root/repo/target/release/deps/xvr-a760b2455c4be101: crates/cli/src/main.rs crates/cli/src/args.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
