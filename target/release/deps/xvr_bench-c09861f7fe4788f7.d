/root/repo/target/release/deps/xvr_bench-c09861f7fe4788f7.d: crates/bench/src/lib.rs crates/bench/src/workload.rs

/root/repo/target/release/deps/libxvr_bench-c09861f7fe4788f7.rlib: crates/bench/src/lib.rs crates/bench/src/workload.rs

/root/repo/target/release/deps/libxvr_bench-c09861f7fe4788f7.rmeta: crates/bench/src/lib.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/workload.rs:
