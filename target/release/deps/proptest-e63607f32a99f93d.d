/root/repo/target/release/deps/proptest-e63607f32a99f93d.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-e63607f32a99f93d.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-e63607f32a99f93d.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
