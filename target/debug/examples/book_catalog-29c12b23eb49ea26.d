/root/repo/target/debug/examples/book_catalog-29c12b23eb49ea26.d: crates/core/../../examples/book_catalog.rs Cargo.toml

/root/repo/target/debug/examples/libbook_catalog-29c12b23eb49ea26.rmeta: crates/core/../../examples/book_catalog.rs Cargo.toml

crates/core/../../examples/book_catalog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
