/root/repo/target/debug/examples/book_catalog-077e710cb98ba1d1.d: crates/core/../../examples/book_catalog.rs

/root/repo/target/debug/examples/book_catalog-077e710cb98ba1d1: crates/core/../../examples/book_catalog.rs

crates/core/../../examples/book_catalog.rs:
