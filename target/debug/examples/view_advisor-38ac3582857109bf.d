/root/repo/target/debug/examples/view_advisor-38ac3582857109bf.d: crates/core/../../examples/view_advisor.rs

/root/repo/target/debug/examples/view_advisor-38ac3582857109bf: crates/core/../../examples/view_advisor.rs

crates/core/../../examples/view_advisor.rs:
