/root/repo/target/debug/examples/view_advisor-df145d8c512de37f.d: crates/core/../../examples/view_advisor.rs Cargo.toml

/root/repo/target/debug/examples/libview_advisor-df145d8c512de37f.rmeta: crates/core/../../examples/view_advisor.rs Cargo.toml

crates/core/../../examples/view_advisor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
