/root/repo/target/debug/examples/auction_dashboard-62544b64ccb56094.d: crates/core/../../examples/auction_dashboard.rs Cargo.toml

/root/repo/target/debug/examples/libauction_dashboard-62544b64ccb56094.rmeta: crates/core/../../examples/auction_dashboard.rs Cargo.toml

crates/core/../../examples/auction_dashboard.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
