/root/repo/target/debug/examples/auction_dashboard-0753a2d33eaa12f9.d: crates/core/../../examples/auction_dashboard.rs

/root/repo/target/debug/examples/auction_dashboard-0753a2d33eaa12f9: crates/core/../../examples/auction_dashboard.rs

crates/core/../../examples/auction_dashboard.rs:
