/root/repo/target/debug/examples/quickstart-e1ed370f8ad61cb0.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e1ed370f8ad61cb0: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
