/root/repo/target/debug/deps/selection_properties-d953323693640963.d: crates/bench/../../tests/selection_properties.rs Cargo.toml

/root/repo/target/debug/deps/libselection_properties-d953323693640963.rmeta: crates/bench/../../tests/selection_properties.rs Cargo.toml

crates/bench/../../tests/selection_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
