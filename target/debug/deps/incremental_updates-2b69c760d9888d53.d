/root/repo/target/debug/deps/incremental_updates-2b69c760d9888d53.d: crates/bench/../../tests/incremental_updates.rs Cargo.toml

/root/repo/target/debug/deps/libincremental_updates-2b69c760d9888d53.rmeta: crates/bench/../../tests/incremental_updates.rs Cargo.toml

crates/bench/../../tests/incremental_updates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
