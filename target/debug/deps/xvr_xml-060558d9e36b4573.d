/root/repo/target/debug/deps/xvr_xml-060558d9e36b4573.d: crates/xml/src/lib.rs crates/xml/src/dewey.rs crates/xml/src/error.rs crates/xml/src/fragment.rs crates/xml/src/fst.rs crates/xml/src/generator.rs crates/xml/src/index.rs crates/xml/src/label.rs crates/xml/src/parser.rs crates/xml/src/region.rs crates/xml/src/samples.rs crates/xml/src/serializer.rs crates/xml/src/stats.rs crates/xml/src/tree.rs

/root/repo/target/debug/deps/xvr_xml-060558d9e36b4573: crates/xml/src/lib.rs crates/xml/src/dewey.rs crates/xml/src/error.rs crates/xml/src/fragment.rs crates/xml/src/fst.rs crates/xml/src/generator.rs crates/xml/src/index.rs crates/xml/src/label.rs crates/xml/src/parser.rs crates/xml/src/region.rs crates/xml/src/samples.rs crates/xml/src/serializer.rs crates/xml/src/stats.rs crates/xml/src/tree.rs

crates/xml/src/lib.rs:
crates/xml/src/dewey.rs:
crates/xml/src/error.rs:
crates/xml/src/fragment.rs:
crates/xml/src/fst.rs:
crates/xml/src/generator.rs:
crates/xml/src/index.rs:
crates/xml/src/label.rs:
crates/xml/src/parser.rs:
crates/xml/src/region.rs:
crates/xml/src/samples.rs:
crates/xml/src/serializer.rs:
crates/xml/src/stats.rs:
crates/xml/src/tree.rs:
