/root/repo/target/debug/deps/xvr_bench-f2d582c32b1f65a4.d: crates/bench/src/lib.rs crates/bench/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libxvr_bench-f2d582c32b1f65a4.rmeta: crates/bench/src/lib.rs crates/bench/src/workload.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
