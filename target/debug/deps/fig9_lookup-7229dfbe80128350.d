/root/repo/target/debug/deps/fig9_lookup-7229dfbe80128350.d: crates/bench/benches/fig9_lookup.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_lookup-7229dfbe80128350.rmeta: crates/bench/benches/fig9_lookup.rs Cargo.toml

crates/bench/benches/fig9_lookup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
