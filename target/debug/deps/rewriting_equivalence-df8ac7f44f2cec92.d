/root/repo/target/debug/deps/rewriting_equivalence-df8ac7f44f2cec92.d: crates/bench/../../tests/rewriting_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/librewriting_equivalence-df8ac7f44f2cec92.rmeta: crates/bench/../../tests/rewriting_equivalence.rs Cargo.toml

crates/bench/../../tests/rewriting_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
