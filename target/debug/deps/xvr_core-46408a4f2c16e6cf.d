/root/repo/target/debug/deps/xvr_core-46408a4f2c16e6cf.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/explain.rs crates/core/src/filter.rs crates/core/src/leafcover.rs crates/core/src/materialize.rs crates/core/src/nfa.rs crates/core/src/rewrite.rs crates/core/src/select.rs crates/core/src/snapshot.rs crates/core/src/view.rs Cargo.toml

/root/repo/target/debug/deps/libxvr_core-46408a4f2c16e6cf.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/explain.rs crates/core/src/filter.rs crates/core/src/leafcover.rs crates/core/src/materialize.rs crates/core/src/nfa.rs crates/core/src/rewrite.rs crates/core/src/select.rs crates/core/src/snapshot.rs crates/core/src/view.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/explain.rs:
crates/core/src/filter.rs:
crates/core/src/leafcover.rs:
crates/core/src/materialize.rs:
crates/core/src/nfa.rs:
crates/core/src/rewrite.rs:
crates/core/src/select.rs:
crates/core/src/snapshot.rs:
crates/core/src/view.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
