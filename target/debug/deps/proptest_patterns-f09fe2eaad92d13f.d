/root/repo/target/debug/deps/proptest_patterns-f09fe2eaad92d13f.d: crates/pattern/tests/proptest_patterns.rs

/root/repo/target/debug/deps/proptest_patterns-f09fe2eaad92d13f: crates/pattern/tests/proptest_patterns.rs

crates/pattern/tests/proptest_patterns.rs:
