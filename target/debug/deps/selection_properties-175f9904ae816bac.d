/root/repo/target/debug/deps/selection_properties-175f9904ae816bac.d: crates/bench/../../tests/selection_properties.rs

/root/repo/target/debug/deps/selection_properties-175f9904ae816bac: crates/bench/../../tests/selection_properties.rs

crates/bench/../../tests/selection_properties.rs:
