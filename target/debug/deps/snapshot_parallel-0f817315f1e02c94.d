/root/repo/target/debug/deps/snapshot_parallel-0f817315f1e02c94.d: crates/bench/../../tests/snapshot_parallel.rs Cargo.toml

/root/repo/target/debug/deps/libsnapshot_parallel-0f817315f1e02c94.rmeta: crates/bench/../../tests/snapshot_parallel.rs Cargo.toml

crates/bench/../../tests/snapshot_parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
