/root/repo/target/debug/deps/filtering_soundness-db532255c6d88149.d: crates/bench/../../tests/filtering_soundness.rs Cargo.toml

/root/repo/target/debug/deps/libfiltering_soundness-db532255c6d88149.rmeta: crates/bench/../../tests/filtering_soundness.rs Cargo.toml

crates/bench/../../tests/filtering_soundness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
