/root/repo/target/debug/deps/xvr_bench-cdcadebdd772d27f.d: crates/bench/src/lib.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/xvr_bench-cdcadebdd772d27f: crates/bench/src/lib.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/workload.rs:
