/root/repo/target/debug/deps/filtering_soundness-230665f97df9eb32.d: crates/bench/../../tests/filtering_soundness.rs

/root/repo/target/debug/deps/filtering_soundness-230665f97df9eb32: crates/bench/../../tests/filtering_soundness.rs

crates/bench/../../tests/filtering_soundness.rs:
