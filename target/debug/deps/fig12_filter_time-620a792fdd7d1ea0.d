/root/repo/target/debug/deps/fig12_filter_time-620a792fdd7d1ea0.d: crates/bench/benches/fig12_filter_time.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_filter_time-620a792fdd7d1ea0.rmeta: crates/bench/benches/fig12_filter_time.rs Cargo.toml

crates/bench/benches/fig12_filter_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
