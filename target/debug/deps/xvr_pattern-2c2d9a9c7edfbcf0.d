/root/repo/target/debug/deps/xvr_pattern-2c2d9a9c7edfbcf0.d: crates/pattern/src/lib.rs crates/pattern/src/containment.rs crates/pattern/src/decompose.rs crates/pattern/src/eval.rs crates/pattern/src/generator.rs crates/pattern/src/holistic.rs crates/pattern/src/hom.rs crates/pattern/src/minimize.rs crates/pattern/src/normalize.rs crates/pattern/src/parse.rs crates/pattern/src/paths.rs crates/pattern/src/pattern.rs crates/pattern/src/region_eval.rs

/root/repo/target/debug/deps/libxvr_pattern-2c2d9a9c7edfbcf0.rlib: crates/pattern/src/lib.rs crates/pattern/src/containment.rs crates/pattern/src/decompose.rs crates/pattern/src/eval.rs crates/pattern/src/generator.rs crates/pattern/src/holistic.rs crates/pattern/src/hom.rs crates/pattern/src/minimize.rs crates/pattern/src/normalize.rs crates/pattern/src/parse.rs crates/pattern/src/paths.rs crates/pattern/src/pattern.rs crates/pattern/src/region_eval.rs

/root/repo/target/debug/deps/libxvr_pattern-2c2d9a9c7edfbcf0.rmeta: crates/pattern/src/lib.rs crates/pattern/src/containment.rs crates/pattern/src/decompose.rs crates/pattern/src/eval.rs crates/pattern/src/generator.rs crates/pattern/src/holistic.rs crates/pattern/src/hom.rs crates/pattern/src/minimize.rs crates/pattern/src/normalize.rs crates/pattern/src/parse.rs crates/pattern/src/paths.rs crates/pattern/src/pattern.rs crates/pattern/src/region_eval.rs

crates/pattern/src/lib.rs:
crates/pattern/src/containment.rs:
crates/pattern/src/decompose.rs:
crates/pattern/src/eval.rs:
crates/pattern/src/generator.rs:
crates/pattern/src/holistic.rs:
crates/pattern/src/hom.rs:
crates/pattern/src/minimize.rs:
crates/pattern/src/normalize.rs:
crates/pattern/src/parse.rs:
crates/pattern/src/paths.rs:
crates/pattern/src/pattern.rs:
crates/pattern/src/region_eval.rs:
