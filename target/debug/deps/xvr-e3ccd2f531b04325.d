/root/repo/target/debug/deps/xvr-e3ccd2f531b04325.d: crates/cli/src/main.rs crates/cli/src/args.rs

/root/repo/target/debug/deps/xvr-e3ccd2f531b04325: crates/cli/src/main.rs crates/cli/src/args.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
