/root/repo/target/debug/deps/experiments-517c6bb481d5f8bf.d: crates/bench/src/bin/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-517c6bb481d5f8bf.rmeta: crates/bench/src/bin/experiments.rs Cargo.toml

crates/bench/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
