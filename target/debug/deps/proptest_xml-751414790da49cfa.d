/root/repo/target/debug/deps/proptest_xml-751414790da49cfa.d: crates/xml/tests/proptest_xml.rs

/root/repo/target/debug/deps/proptest_xml-751414790da49cfa: crates/xml/tests/proptest_xml.rs

crates/xml/tests/proptest_xml.rs:
