/root/repo/target/debug/deps/experiments-33ac41e13348d13e.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-33ac41e13348d13e: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
