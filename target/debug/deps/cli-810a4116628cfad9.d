/root/repo/target/debug/deps/cli-810a4116628cfad9.d: crates/cli/tests/cli.rs

/root/repo/target/debug/deps/cli-810a4116628cfad9: crates/cli/tests/cli.rs

crates/cli/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_xvr=/root/repo/target/debug/xvr
