/root/repo/target/debug/deps/xvr-0476208aa0ed5f43.d: crates/cli/src/main.rs crates/cli/src/args.rs Cargo.toml

/root/repo/target/debug/deps/libxvr-0476208aa0ed5f43.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
