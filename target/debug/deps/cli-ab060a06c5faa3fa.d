/root/repo/target/debug/deps/cli-ab060a06c5faa3fa.d: crates/cli/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-ab060a06c5faa3fa.rmeta: crates/cli/tests/cli.rs Cargo.toml

crates/cli/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_xvr=placeholder:xvr
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
