/root/repo/target/debug/deps/incremental_updates-444ff1f6db0b41ef.d: crates/bench/../../tests/incremental_updates.rs

/root/repo/target/debug/deps/incremental_updates-444ff1f6db0b41ef: crates/bench/../../tests/incremental_updates.rs

crates/bench/../../tests/incremental_updates.rs:
