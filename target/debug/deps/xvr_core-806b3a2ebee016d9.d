/root/repo/target/debug/deps/xvr_core-806b3a2ebee016d9.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/explain.rs crates/core/src/filter.rs crates/core/src/leafcover.rs crates/core/src/materialize.rs crates/core/src/nfa.rs crates/core/src/rewrite.rs crates/core/src/select.rs crates/core/src/snapshot.rs crates/core/src/view.rs

/root/repo/target/debug/deps/xvr_core-806b3a2ebee016d9: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/explain.rs crates/core/src/filter.rs crates/core/src/leafcover.rs crates/core/src/materialize.rs crates/core/src/nfa.rs crates/core/src/rewrite.rs crates/core/src/select.rs crates/core/src/snapshot.rs crates/core/src/view.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/explain.rs:
crates/core/src/filter.rs:
crates/core/src/leafcover.rs:
crates/core/src/materialize.rs:
crates/core/src/nfa.rs:
crates/core/src/rewrite.rs:
crates/core/src/select.rs:
crates/core/src/snapshot.rs:
crates/core/src/view.rs:
