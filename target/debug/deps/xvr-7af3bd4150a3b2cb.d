/root/repo/target/debug/deps/xvr-7af3bd4150a3b2cb.d: crates/cli/src/main.rs crates/cli/src/args.rs

/root/repo/target/debug/deps/xvr-7af3bd4150a3b2cb: crates/cli/src/main.rs crates/cli/src/args.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
