/root/repo/target/debug/deps/proptest_patterns-16d05f078f091a5c.d: crates/pattern/tests/proptest_patterns.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_patterns-16d05f078f091a5c.rmeta: crates/pattern/tests/proptest_patterns.rs Cargo.toml

crates/pattern/tests/proptest_patterns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
