/root/repo/target/debug/deps/snapshot_parallel-59725db7a00d417d.d: crates/bench/../../tests/snapshot_parallel.rs

/root/repo/target/debug/deps/snapshot_parallel-59725db7a00d417d: crates/bench/../../tests/snapshot_parallel.rs

crates/bench/../../tests/snapshot_parallel.rs:
