/root/repo/target/debug/deps/fig8_query_time-9585dfd0c4c00b22.d: crates/bench/benches/fig8_query_time.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_query_time-9585dfd0c4c00b22.rmeta: crates/bench/benches/fig8_query_time.rs Cargo.toml

crates/bench/benches/fig8_query_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
