/root/repo/target/debug/deps/xvr_xml-0b04f1b63b43d301.d: crates/xml/src/lib.rs crates/xml/src/dewey.rs crates/xml/src/error.rs crates/xml/src/fragment.rs crates/xml/src/fst.rs crates/xml/src/generator.rs crates/xml/src/index.rs crates/xml/src/label.rs crates/xml/src/parser.rs crates/xml/src/region.rs crates/xml/src/samples.rs crates/xml/src/serializer.rs crates/xml/src/stats.rs crates/xml/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libxvr_xml-0b04f1b63b43d301.rmeta: crates/xml/src/lib.rs crates/xml/src/dewey.rs crates/xml/src/error.rs crates/xml/src/fragment.rs crates/xml/src/fst.rs crates/xml/src/generator.rs crates/xml/src/index.rs crates/xml/src/label.rs crates/xml/src/parser.rs crates/xml/src/region.rs crates/xml/src/samples.rs crates/xml/src/serializer.rs crates/xml/src/stats.rs crates/xml/src/tree.rs Cargo.toml

crates/xml/src/lib.rs:
crates/xml/src/dewey.rs:
crates/xml/src/error.rs:
crates/xml/src/fragment.rs:
crates/xml/src/fst.rs:
crates/xml/src/generator.rs:
crates/xml/src/index.rs:
crates/xml/src/label.rs:
crates/xml/src/parser.rs:
crates/xml/src/region.rs:
crates/xml/src/samples.rs:
crates/xml/src/serializer.rs:
crates/xml/src/stats.rs:
crates/xml/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
