/root/repo/target/debug/deps/xvr_core-9b456c3bdc3290e2.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/explain.rs crates/core/src/filter.rs crates/core/src/leafcover.rs crates/core/src/materialize.rs crates/core/src/nfa.rs crates/core/src/rewrite.rs crates/core/src/select.rs crates/core/src/snapshot.rs crates/core/src/view.rs

/root/repo/target/debug/deps/libxvr_core-9b456c3bdc3290e2.rlib: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/explain.rs crates/core/src/filter.rs crates/core/src/leafcover.rs crates/core/src/materialize.rs crates/core/src/nfa.rs crates/core/src/rewrite.rs crates/core/src/select.rs crates/core/src/snapshot.rs crates/core/src/view.rs

/root/repo/target/debug/deps/libxvr_core-9b456c3bdc3290e2.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/explain.rs crates/core/src/filter.rs crates/core/src/leafcover.rs crates/core/src/materialize.rs crates/core/src/nfa.rs crates/core/src/rewrite.rs crates/core/src/select.rs crates/core/src/snapshot.rs crates/core/src/view.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/explain.rs:
crates/core/src/filter.rs:
crates/core/src/leafcover.rs:
crates/core/src/materialize.rs:
crates/core/src/nfa.rs:
crates/core/src/rewrite.rs:
crates/core/src/select.rs:
crates/core/src/snapshot.rs:
crates/core/src/view.rs:
