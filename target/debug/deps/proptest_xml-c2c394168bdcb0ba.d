/root/repo/target/debug/deps/proptest_xml-c2c394168bdcb0ba.d: crates/xml/tests/proptest_xml.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_xml-c2c394168bdcb0ba.rmeta: crates/xml/tests/proptest_xml.rs Cargo.toml

crates/xml/tests/proptest_xml.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
