/root/repo/target/debug/deps/rewrite_edge_cases-7cf23c2e7840486d.d: crates/bench/../../tests/rewrite_edge_cases.rs

/root/repo/target/debug/deps/rewrite_edge_cases-7cf23c2e7840486d: crates/bench/../../tests/rewrite_edge_cases.rs

crates/bench/../../tests/rewrite_edge_cases.rs:
