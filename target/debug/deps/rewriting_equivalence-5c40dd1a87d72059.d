/root/repo/target/debug/deps/rewriting_equivalence-5c40dd1a87d72059.d: crates/bench/../../tests/rewriting_equivalence.rs

/root/repo/target/debug/deps/rewriting_equivalence-5c40dd1a87d72059: crates/bench/../../tests/rewriting_equivalence.rs

crates/bench/../../tests/rewriting_equivalence.rs:
