/root/repo/target/debug/deps/xvr_pattern-c3ff79d79abe37f8.d: crates/pattern/src/lib.rs crates/pattern/src/containment.rs crates/pattern/src/decompose.rs crates/pattern/src/eval.rs crates/pattern/src/generator.rs crates/pattern/src/holistic.rs crates/pattern/src/hom.rs crates/pattern/src/minimize.rs crates/pattern/src/normalize.rs crates/pattern/src/parse.rs crates/pattern/src/paths.rs crates/pattern/src/region_eval.rs crates/pattern/src/pattern.rs Cargo.toml

/root/repo/target/debug/deps/libxvr_pattern-c3ff79d79abe37f8.rmeta: crates/pattern/src/lib.rs crates/pattern/src/containment.rs crates/pattern/src/decompose.rs crates/pattern/src/eval.rs crates/pattern/src/generator.rs crates/pattern/src/holistic.rs crates/pattern/src/hom.rs crates/pattern/src/minimize.rs crates/pattern/src/normalize.rs crates/pattern/src/parse.rs crates/pattern/src/paths.rs crates/pattern/src/region_eval.rs crates/pattern/src/pattern.rs Cargo.toml

crates/pattern/src/lib.rs:
crates/pattern/src/containment.rs:
crates/pattern/src/decompose.rs:
crates/pattern/src/eval.rs:
crates/pattern/src/generator.rs:
crates/pattern/src/holistic.rs:
crates/pattern/src/hom.rs:
crates/pattern/src/minimize.rs:
crates/pattern/src/normalize.rs:
crates/pattern/src/parse.rs:
crates/pattern/src/paths.rs:
crates/pattern/src/region_eval.rs:
crates/pattern/src/pattern.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
