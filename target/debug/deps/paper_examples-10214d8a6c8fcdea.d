/root/repo/target/debug/deps/paper_examples-10214d8a6c8fcdea.d: crates/bench/../../tests/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-10214d8a6c8fcdea: crates/bench/../../tests/paper_examples.rs

crates/bench/../../tests/paper_examples.rs:
