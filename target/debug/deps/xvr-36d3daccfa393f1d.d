/root/repo/target/debug/deps/xvr-36d3daccfa393f1d.d: crates/cli/src/main.rs crates/cli/src/args.rs Cargo.toml

/root/repo/target/debug/deps/libxvr-36d3daccfa393f1d.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
