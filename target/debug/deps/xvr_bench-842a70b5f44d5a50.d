/root/repo/target/debug/deps/xvr_bench-842a70b5f44d5a50.d: crates/bench/src/lib.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/libxvr_bench-842a70b5f44d5a50.rlib: crates/bench/src/lib.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/libxvr_bench-842a70b5f44d5a50.rmeta: crates/bench/src/lib.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/workload.rs:
