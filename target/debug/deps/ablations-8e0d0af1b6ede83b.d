/root/repo/target/debug/deps/ablations-8e0d0af1b6ede83b.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-8e0d0af1b6ede83b.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
