/root/repo/target/debug/deps/experiments-33a4103c0c2a8d7d.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-33a4103c0c2a8d7d: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
