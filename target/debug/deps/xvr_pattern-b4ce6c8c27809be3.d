/root/repo/target/debug/deps/xvr_pattern-b4ce6c8c27809be3.d: crates/pattern/src/lib.rs crates/pattern/src/containment.rs crates/pattern/src/decompose.rs crates/pattern/src/eval.rs crates/pattern/src/generator.rs crates/pattern/src/holistic.rs crates/pattern/src/hom.rs crates/pattern/src/minimize.rs crates/pattern/src/normalize.rs crates/pattern/src/parse.rs crates/pattern/src/paths.rs crates/pattern/src/pattern.rs crates/pattern/src/region_eval.rs

/root/repo/target/debug/deps/xvr_pattern-b4ce6c8c27809be3: crates/pattern/src/lib.rs crates/pattern/src/containment.rs crates/pattern/src/decompose.rs crates/pattern/src/eval.rs crates/pattern/src/generator.rs crates/pattern/src/holistic.rs crates/pattern/src/hom.rs crates/pattern/src/minimize.rs crates/pattern/src/normalize.rs crates/pattern/src/parse.rs crates/pattern/src/paths.rs crates/pattern/src/pattern.rs crates/pattern/src/region_eval.rs

crates/pattern/src/lib.rs:
crates/pattern/src/containment.rs:
crates/pattern/src/decompose.rs:
crates/pattern/src/eval.rs:
crates/pattern/src/generator.rs:
crates/pattern/src/holistic.rs:
crates/pattern/src/hom.rs:
crates/pattern/src/minimize.rs:
crates/pattern/src/normalize.rs:
crates/pattern/src/parse.rs:
crates/pattern/src/paths.rs:
crates/pattern/src/pattern.rs:
crates/pattern/src/region_eval.rs:
