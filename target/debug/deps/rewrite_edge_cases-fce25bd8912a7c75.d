/root/repo/target/debug/deps/rewrite_edge_cases-fce25bd8912a7c75.d: crates/bench/../../tests/rewrite_edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/librewrite_edge_cases-fce25bd8912a7c75.rmeta: crates/bench/../../tests/rewrite_edge_cases.rs Cargo.toml

crates/bench/../../tests/rewrite_edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
