/root/repo/target/debug/deps/end_to_end-8e07998ed3f61521.d: crates/bench/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-8e07998ed3f61521: crates/bench/../../tests/end_to_end.rs

crates/bench/../../tests/end_to_end.rs:
