/root/repo/target/debug/deps/micro_substrates-b6cfc5485ba02556.d: crates/bench/benches/micro_substrates.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_substrates-b6cfc5485ba02556.rmeta: crates/bench/benches/micro_substrates.rs Cargo.toml

crates/bench/benches/micro_substrates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
