//! Targeted edge cases for the rewriting stage: nested fragments, repeated
//! views at multiple join positions, root answers, wildcard views, and
//! budget interactions.

use xvr_core::{Engine, EngineConfig, Strategy};
use xvr_xml::parse_document;
use xvr_xml::samples::book_document;

fn check_all(engine: &Engine, q: &xvr_pattern::TreePattern) {
    let reference = engine.answer(q, Strategy::Bn).unwrap().codes;
    for strategy in [Strategy::Mv, Strategy::Hv, Strategy::Cb] {
        match engine.answer(q, strategy) {
            Ok(a) => assert_eq!(
                a.codes,
                reference,
                "{strategy} on {}",
                q.display(engine.labels())
            ),
            Err(xvr_core::AnswerError::NotAnswerable) => {}
            Err(e) => panic!("{strategy}: {e}"),
        }
    }
}

#[test]
fn nested_fragments_join_correctly() {
    // Sections nest (s//s); fragments of //s overlap, and answers can come
    // from inner and outer fragments.
    let doc = book_document();
    let mut engine = Engine::new(doc, EngineConfig::default());
    engine.add_view_str("//s").unwrap();
    for qsrc in ["//s//p", "//s/s/p", "//s[.//i]//p", "//s//s"] {
        let q = engine.parse(qsrc).unwrap();
        let a = engine.answer(&q, Strategy::Hv).expect(qsrc);
        let reference = engine.answer(&q, Strategy::Bn).unwrap().codes;
        assert_eq!(a.codes, reference, "{qsrc}");
    }
}

#[test]
fn one_view_joined_at_two_positions() {
    // Q = /b/s[s/p]/s/p needs //s/p both as a branch witness and as the
    // answer; a single materialized view serves both.
    let doc = book_document();
    let mut engine = Engine::new(doc, EngineConfig::default());
    engine.add_view_str("//s/p").unwrap();
    let q = engine.parse("/b/s[s/p]/s/p").unwrap();
    check_all(&engine, &q);
    let a = engine.answer(&q, Strategy::Mv).unwrap();
    assert_eq!(a.views_used.len(), 1);
    assert!(!a.codes.is_empty());
}

#[test]
fn answer_at_pattern_root() {
    // The query returns its own root bindings; the anchor's m is the root.
    let doc = book_document();
    let mut engine = Engine::new(doc, EngineConfig::default());
    engine.add_view_str("//s[t][p]").unwrap();
    let q = engine.parse("//s[t][p]").unwrap();
    check_all(&engine, &q);
    let a = engine.answer(&q, Strategy::Hv).unwrap();
    assert_eq!(a.codes.len(), 6, "every section has a title and paragraph");
}

#[test]
fn wildcard_answer_view() {
    // A view returning wildcard nodes still answers concrete queries: the
    // skeleton join checks the concrete label from the decoded codes.
    let doc = book_document();
    let mut engine = Engine::new(doc, EngineConfig::default());
    engine.add_view_str("//s/*").unwrap();
    for qsrc in ["//s/p", "//s/f", "//s/t"] {
        let q = engine.parse(qsrc).unwrap();
        let a = engine.answer(&q, Strategy::Hv).expect(qsrc);
        let reference = engine.answer(&q, Strategy::Bn).unwrap().codes;
        assert_eq!(a.codes, reference, "{qsrc}");
    }
}

#[test]
fn descendant_anchored_self_view() {
    // Identity views with `//` roots and floating branches (solo rule).
    let doc = book_document();
    let mut engine = Engine::new(doc, EngineConfig::default());
    let queries = ["//s[.//i]//p", "//*[t]/f", "//s[f//i][t]/p"];
    for qsrc in queries {
        let q = engine.parse(qsrc).unwrap();
        engine.add_view(q.clone());
    }
    for qsrc in queries {
        let q = engine.parse(qsrc).unwrap();
        check_all(&engine, &q);
        assert!(engine.answer(&q, Strategy::Hv).is_ok(), "{qsrc}");
    }
}

#[test]
fn empty_answer_sets_round_trip() {
    // Queries with empty answers must yield empty from views too (never
    // error, never fabricate).
    let doc = book_document();
    let mut engine = Engine::new(doc, EngineConfig::default());
    engine.add_view_str("//s[a]/p").unwrap(); // no section has an author
    engine.add_view_str("//s[t]/p").unwrap();
    let q = engine.parse("//s[a]/p").unwrap();
    if let Ok(a) = engine.answer(&q, Strategy::Hv) {
        assert!(a.codes.is_empty());
    }
}

#[test]
fn single_node_document() {
    let doc = parse_document("<a/>").unwrap();
    let mut engine = Engine::new(doc, EngineConfig::default());
    engine.add_view_str("/a").unwrap();
    let q = engine.parse("/a").unwrap();
    let a = engine.answer(&q, Strategy::Hv).unwrap();
    assert_eq!(a.codes.len(), 1);
    let q2 = engine.parse("/a/b").unwrap();
    assert!(engine.answer(&q2, Strategy::Bn).unwrap().codes.is_empty());
}

#[test]
fn deep_chain_document() {
    // A pathological 60-deep chain: codes, joins and recursion depths hold.
    let mut xml = String::new();
    for _ in 0..30 {
        xml.push_str("<a><b>");
    }
    xml.push('x');
    for _ in 0..30 {
        xml.push_str("</b></a>");
    }
    let doc = parse_document(&xml).unwrap();
    let mut engine = Engine::new(doc, EngineConfig::default());
    engine.add_view_str("//a//b").unwrap();
    let q = engine.parse("//a/b[.//b]").unwrap();
    check_all(&engine, &q);
    let reference = engine.answer(&q, Strategy::Bn).unwrap();
    assert_eq!(reference.codes.len(), 29);
}

#[test]
fn attr_predicates_through_rewriting() {
    let doc =
        parse_document(r#"<r><s k="1"><p/><t/></s><s><p/><t/></s><s k="2"><p/></s></r>"#).unwrap();
    let mut engine = Engine::new(doc, EngineConfig::default());
    engine.add_view_str("//s[@k]/p").unwrap();
    engine.add_view_str("//s[t]/p").unwrap();
    // Query needs both @k and [t]: only the first s qualifies.
    let q = engine.parse("//s[@k][t]/p").unwrap();
    check_all(&engine, &q);
    let a = engine.answer(&q, Strategy::Hv).unwrap();
    assert_eq!(a.codes.len(), 1);
    // Value-specific query answered by the existence view + fragment check?
    // The @k="2" node has no t; @k="1" has one.
    let q2 = engine.parse(r#"//s[@k="1"][t]/p"#).unwrap();
    let reference = engine.answer(&q2, Strategy::Bn).unwrap().codes;
    assert_eq!(reference.len(), 1);
    if let Ok(a2) = engine.answer(&q2, Strategy::Hv) {
        assert_eq!(a2.codes, reference);
    }
}

#[test]
fn anchor_above_other_units() {
    // Anchor binds high (sections), another unit binds deep (images);
    // their codes relate by proper prefix across several levels.
    let doc = book_document();
    let mut engine = Engine::new(doc, EngineConfig::default());
    engine.add_view_str("//s[t]").unwrap(); // anchor candidate (m = s)
    engine.add_view_str("//f/i").unwrap(); // deep unit (m = i)
    let q = engine.parse("//s[t][f/i]/p").unwrap();
    check_all(&engine, &q);
    let a = engine.answer(&q, Strategy::Hv).expect("answerable");
    let direct = engine.answer(&q, Strategy::Bn).unwrap().codes;
    assert_eq!(a.codes, direct);
    assert!(!a.codes.is_empty());
}

#[test]
fn three_way_join() {
    let doc = book_document();
    let mut engine = Engine::new(doc, EngineConfig::default());
    engine.add_view_str("//s[t]/p").unwrap();
    engine.add_view_str("//s/f[t]").unwrap();
    engine.add_view_str("//f/i").unwrap();
    // Needs p (anchor), the figure title, and the image — three units.
    let q = engine.parse("//s[f[t]/i][t]/p").unwrap();
    check_all(&engine, &q);
    let a = engine.answer(&q, Strategy::Hv).expect("answerable");
    let direct = engine.answer(&q, Strategy::Bn).unwrap().codes;
    assert_eq!(a.codes, direct);
    assert_eq!(direct.len(), 5, "all figure sections' paragraphs");
}
