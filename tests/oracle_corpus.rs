//! Replays every reproducer under `tests/corpus/` against the clean
//! pipeline. Each `.case` file is a shrunk counterexample the oracle
//! harness (`cargo run -p xvr-bench --bin oracle`) once caught — either
//! from an injected bug or a real one. Replaying them in CI turns the
//! corpus into a permanent regression suite: a case that fails here
//! means a previously-fixed (or previously-demonstrated) bug is back.

use std::path::Path;

use xvr_core::oracle::{load_corpus, replay, OracleConfig};

fn corpus_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/corpus"))
}

#[test]
fn corpus_cases_replay_clean() {
    let cases = load_corpus(corpus_dir()).expect("corpus directory should be readable");
    assert!(
        !cases.is_empty(),
        "tests/corpus should ship at least one reproducer"
    );
    let cfg = OracleConfig::default();
    let mut failures = Vec::new();
    for (path, repro) in &cases {
        match replay(repro, &cfg) {
            Ok(violations) if violations.is_empty() => {}
            Ok(violations) => {
                for v in violations {
                    failures.push(format!("{}: {v}", path.display()));
                }
            }
            Err(e) => failures.push(format!("{}: replay error: {e}", path.display())),
        }
    }
    assert!(
        failures.is_empty(),
        "{} corpus case(s) regressed:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn corpus_files_round_trip_through_text_format() {
    for (path, repro) in load_corpus(corpus_dir()).expect("corpus directory should be readable") {
        let text = repro.to_text();
        let back = xvr_core::oracle::Reproducer::from_text(&text)
            .unwrap_or_else(|e| panic!("{}: re-parse failed: {e}", path.display()));
        assert_eq!(
            back.to_text(),
            text,
            "{}: text format should round-trip",
            path.display()
        );
    }
}
