//! Intersection-aware rewriting (`Strategy::HvIntersect`): deterministic
//! fixed cases for the coverage gain, the soundness boundary, budget
//! truncation, and cache byte-identity — plus a seeded differential
//! asserting the strategy equals `Bn` ground truth on every case where it
//! claims answerability, and answers at least everything `Hv` answers.

use xvr_core::{AnswerError, Engine, EngineConfig, QueryOptions, Strategy};
use xvr_pattern::distinct_positive_patterns;
use xvr_pattern::generator::{QueryConfig, QueryGenerator};
use xvr_xml::generator::{generate, Config};
use xvr_xml::parse_document;

/// The canonical coverage-gain document: only the first `b` carries both
/// an `x` and a `y`, so `/a/b[x][y]//c` selects exactly the two `c`
/// descendants under it.
const GAIN_DOC: &str = "<a>\
     <b><x/><y/><d><c>1</c></d><c>2</c></b>\
     <b><x/><d><c>3</c></d></b>\
     <b><y/><c>4</c></b>\
     <b><c>5</c></b>\
     </a>";

fn engine_with(doc: &str, views: &[&str], budget: usize) -> Engine {
    let doc = parse_document(doc).expect("fixed document parses");
    let mut engine = Engine::new(
        doc,
        EngineConfig {
            fragment_budget: budget,
            ..EngineConfig::default()
        },
    );
    for v in views {
        engine.add_view_str(v).expect("fixed view parses");
    }
    engine
}

/// Two overlapping views whose intersection answers a query neither view
/// (nor any standard multi-view cover) answers alone: the descendant edge
/// `b//c` defeats suffix pinning, and each view misses one branch.
#[test]
fn intersection_answers_where_every_standard_strategy_fails() {
    let engine = engine_with(GAIN_DOC, &["/a/b[x]//c", "/a/b[y]//c"], usize::MAX);
    let snap = engine.snapshot();
    let q = snap.parse("/a/b[x][y]//c").unwrap();
    let ground = snap
        .query(&q, &QueryOptions::strategy(Strategy::Bn))
        .answer
        .unwrap()
        .codes;
    assert_eq!(ground.len(), 2, "the first b holds exactly two c's");
    for starved in [Strategy::Mn, Strategy::Mv, Strategy::Hv, Strategy::Cb] {
        assert_eq!(
            snap.query(&q, &QueryOptions::strategy(starved))
                .answer
                .err(),
            Some(AnswerError::NotAnswerable),
            "{starved:?} must not answer: each view misses a branch"
        );
    }
    let hvi = snap
        .query(&q, &QueryOptions::strategy(Strategy::HvIntersect))
        .answer
        .expect("the view intersection answers the query");
    assert_eq!(hvi.codes, ground);
}

/// The worked-example shape of Cautis et al. (child-only prefixes, one
/// predicate per view): whatever path answers it, the result must be
/// ground truth, and `HvIntersect` must answer it.
#[test]
fn cautis_worked_example_shape_is_answered_exactly() {
    let doc = "<a>\
         <b/><e/>\
         <d>keep</d>\
         </a>";
    let engine = engine_with(doc, &["/a[b]/d", "/a[e]/d"], usize::MAX);
    let snap = engine.snapshot();
    let q = snap.parse("/a[b][e]/d").unwrap();
    let ground = snap
        .query(&q, &QueryOptions::strategy(Strategy::Bn))
        .answer
        .unwrap()
        .codes;
    assert_eq!(ground.len(), 1);
    let hvi = snap
        .query(&q, &QueryOptions::strategy(Strategy::HvIntersect))
        .answer
        .expect("jointly the two views cover both predicates");
    assert_eq!(hvi.codes, ground);
}

/// The classic unsound shape: `//`-anchored members whose per-document
/// witnesses may sit at *different* `a` nodes. Unioning the two solo
/// covers would wrongly answer a non-empty set here; the prefix-pinning
/// cover test must refuse the rewrite instead.
#[test]
fn ancestor_ambiguous_intersection_is_refused() {
    // No single `a` has both x and y, but the nested pair makes the inner
    // `c` a member of both view answer sets.
    let doc = "<a><x/><a><y/><c/></a></a>";
    let engine = engine_with(doc, &["//a[x]//c", "//a[y]//c"], usize::MAX);
    let snap = engine.snapshot();
    let q = snap.parse("//a[x][y]//c").unwrap();
    let ground = snap
        .query(&q, &QueryOptions::strategy(Strategy::Bn))
        .answer
        .unwrap()
        .codes;
    assert!(ground.is_empty(), "no a node carries both branches");
    match snap
        .query(&q, &QueryOptions::strategy(Strategy::HvIntersect))
        .answer
    {
        Err(AnswerError::NotAnswerable) => {}
        Ok(a) => assert_eq!(
            a.codes, ground,
            "if the strategy answers at all it must agree with Bn"
        ),
        Err(e) => panic!("unexpected error: {e}"),
    }
}

/// A zero byte budget truncates every member view; incomplete
/// materializations must disqualify the intersection, not corrupt it.
#[test]
fn truncated_member_views_disable_the_intersection() {
    let engine = engine_with(GAIN_DOC, &["/a/b[x]//c", "/a/b[y]//c"], 0);
    let snap = engine.snapshot();
    let q = snap.parse("/a/b[x][y]//c").unwrap();
    assert_eq!(
        snap.query(&q, &QueryOptions::strategy(Strategy::HvIntersect))
            .answer
            .err(),
        Some(AnswerError::NotAnswerable),
        "empty stores leave no usable members"
    );
}

/// The cached and uncached intersection paths must be byte-identical,
/// including on repeat queries that hit every cache layer.
#[test]
fn cached_and_uncached_intersections_are_byte_identical() {
    let engine = engine_with(GAIN_DOC, &["/a/b[x]//c", "/a/b[y]//c"], usize::MAX);
    let snap = engine.snapshot();
    let q = snap.parse("/a/b[x][y]//c").unwrap();
    let uncached = snap
        .query(
            &q,
            &QueryOptions::strategy(Strategy::HvIntersect).with_cache(false),
        )
        .answer
        .unwrap()
        .codes;
    for round in 0..3 {
        let cached = snap
            .query(&q, &QueryOptions::strategy(Strategy::HvIntersect))
            .answer
            .unwrap()
            .codes;
        assert_eq!(cached, uncached, "round {round}");
    }
}

/// Seeded differential: on randomized documents, view sets, and positive
/// query workloads, every `HvIntersect` answer equals `Bn` ground truth,
/// and `HvIntersect` answers every query `Hv` answers (the heuristic runs
/// first, so its coverage is a lower bound).
#[test]
fn seeded_differential_matches_ground_truth() {
    let mut checked = 0usize;
    let mut answered = 0usize;
    for seed in 0..6u64 {
        let doc = generate(&Config::tiny(seed));
        let views =
            distinct_positive_patterns(&doc, QueryConfig::paper_view_workload(seed ^ 0x1), 14);
        let mut engine = Engine::new(doc, EngineConfig::default());
        for v in views {
            engine.add_view(v);
        }
        let doc = engine.doc().clone();
        let mut gen = QueryGenerator::new(&doc.fst, QueryConfig::paper_query_workload(seed ^ 0x2));
        for _ in 0..8 {
            let Some(q) = gen.generate_positive(&doc, 30) else {
                continue;
            };
            checked += 1;
            let ground = engine.answer(&q, Strategy::Bn).unwrap().codes;
            let hv = engine.answer(&q, Strategy::Hv);
            let hvi = engine.answer(&q, Strategy::HvIntersect);
            if hv.is_ok() {
                assert!(
                    hvi.is_ok(),
                    "coverage regression: Hv answered but HvIntersect did not for {}",
                    q.display(engine.labels())
                );
            }
            match hvi {
                Ok(a) => {
                    answered += 1;
                    assert_eq!(
                        a.codes,
                        ground,
                        "HvIntersect diverged from Bn on {}",
                        q.display(engine.labels())
                    );
                }
                Err(AnswerError::NotAnswerable) => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }
    assert!(checked >= 20, "workload generation went vacuous");
    assert!(answered > 0, "HvIntersect never answered — vacuous sweep");
}
