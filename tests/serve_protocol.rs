//! Integration tests of the serving layer: wire-protocol robustness
//! under fuzzed and mutated inputs, snapshot hot-swap atomicity under
//! concurrent readers, and a real TCP server surviving admin swaps mid
//! load with zero dropped or failed queries.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xvr_bench::{paper_document, planted_views, test_queries};
use xvr_core::{
    read_frame, run_load, write_frame, Client, Engine, EngineConfig, LoadConfig, QueryOptions,
    Request, Response, Server, ServerConfig, SnapshotCell, Status, Strategy, WireError,
    WireOptions, MAX_FRAME_LEN,
};

fn planted_engine(scale: f64) -> (Engine, Vec<String>) {
    let doc = paper_document(scale, 0x5eed);
    let mut engine = Engine::new(doc, EngineConfig::default());
    let mut sources = Vec::new();
    for src in planted_views() {
        engine.add_view_str(src).expect("planted view parses");
        sources.push(src.to_string());
    }
    (engine, sources)
}

// --- Wire protocol robustness -------------------------------------------

/// Decoding arbitrary bytes never panics: every outcome is a clean value
/// or a `WireError`. 4096 random payloads of random lengths through both
/// decoders.
#[test]
fn decode_random_bytes_never_panics() {
    let mut rng = StdRng::seed_from_u64(0xf422);
    for _ in 0..4096 {
        let len = rng.gen_range(0usize..256);
        let payload: Vec<u8> = (0..len).map(|_| rng.gen_range(0u8..=255)).collect();
        let _ = Request::decode(&payload);
        let _ = Response::decode(&payload);
    }
}

/// Mutating a valid encoding — truncating it at any point or flipping a
/// random byte — either still decodes or fails cleanly; and untouched
/// encodings always round-trip to the original value.
#[test]
fn mutated_encodings_fail_cleanly() {
    let requests = vec![
        Request::Ping,
        Request::Query {
            query: "/site/people/person[address/city]/name".into(),
            options: WireOptions::strategy(Strategy::Mv),
        },
        Request::Batch {
            queries: test_queries().iter().map(|q| q.xpath.to_string()).collect(),
            options: WireOptions::strategy(Strategy::Hv),
            jobs: 4,
        },
        Request::Stats,
        Request::AddView {
            xpath: "/site/open_auctions/open_auction[bidder]/initial".into(),
        },
        Request::SwapDoc {
            path: "data/xmark_001.xml".into(),
        },
        Request::Shutdown,
        Request::Advise {
            queries: test_queries().iter().map(|q| q.xpath.to_string()).collect(),
            budget: 1 << 20,
            seed: 42,
        },
    ];
    let mut rng = StdRng::seed_from_u64(99);
    for request in &requests {
        let bytes = request.encode();
        assert_eq!(&Request::decode(&bytes).unwrap(), request);
        // Every proper prefix is an error, never a panic or a value
        // (all encodings here are self-delimiting).
        for cut in 0..bytes.len() {
            assert!(Request::decode(&bytes[..cut]).is_err(), "prefix {cut}");
        }
        // Random single-byte corruption: decode may succeed (the byte may
        // be inside a string) but must never panic.
        for _ in 0..64 {
            let mut corrupt = bytes.clone();
            let at = rng.gen_range(0usize..corrupt.len());
            corrupt[at] ^= rng.gen_range(1u8..=255);
            let _ = Request::decode(&corrupt);
        }
    }
}

/// Frame reading rejects oversized lengths before allocating, reports
/// truncation inside a frame, and treats EOF at a frame boundary as a
/// clean end of stream.
#[test]
fn frame_reader_handles_truncation_and_oversize() {
    // Clean EOF between frames.
    assert_eq!(read_frame(&mut &[][..]).unwrap(), None);
    // EOF inside the length prefix and inside the payload.
    assert_eq!(
        read_frame(&mut &[0u8, 0][..]).unwrap_err(),
        WireError::Truncated
    );
    let mut partial = Vec::new();
    write_frame(&mut partial, b"hello").unwrap();
    for cut in 1..partial.len() {
        assert_eq!(
            read_frame(&mut &partial[..cut]).unwrap_err(),
            WireError::Truncated,
            "cut {cut}"
        );
    }
    // A length prefix beyond MAX_FRAME_LEN is rejected without reading on.
    let huge = ((MAX_FRAME_LEN + 1) as u32).to_be_bytes();
    assert!(matches!(
        read_frame(&mut &huge[..]).unwrap_err(),
        WireError::Oversized(_)
    ));
    // And a stream of random garbage never panics the reader.
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..256 {
        let len = rng.gen_range(0usize..64);
        let junk: Vec<u8> = (0..len).map(|_| rng.gen_range(0u8..=255)).collect();
        let mut cursor = &junk[..];
        while let Ok(Some(_)) | Err(_) = read_frame(&mut cursor) {
            if cursor.is_empty() {
                break;
            }
        }
    }
}

// --- Snapshot swap atomicity --------------------------------------------

/// Concurrent readers racing a `SnapshotCell::swap` observe the old
/// snapshot or the new one, never an error and never a torn state: a
/// query that is unanswerable pre-swap and answerable post-swap yields
/// exactly `NotAnswerable` or the post-swap answer on every read.
#[test]
fn swap_under_concurrent_readers_is_atomic() {
    let doc = paper_document(0.002, 7);
    let mut engine = Engine::new(doc, EngineConfig::default());
    // Q1's self-view only: Q2 is unanswerable until the swap adds its views.
    engine
        .add_view_str("/site/open_auctions/open_auction[bidder]/initial")
        .unwrap();
    let q2 = engine
        .parse("/site/people/person[address/city][profile/age]/name")
        .unwrap();
    let cell = SnapshotCell::new(engine.snapshot());

    // The answer Q2 must have once the swap lands.
    engine
        .add_view_str("/site/people/person[address/city]/name")
        .unwrap();
    engine
        .add_view_str("/site/people/person[profile/age]/name")
        .unwrap();
    let next = engine.snapshot();
    let expected: Vec<String> = next
        .query(&q2, &QueryOptions::default())
        .answer
        .expect("answerable post-swap")
        .codes
        .iter()
        .map(|c| c.to_string())
        .collect();

    let done = AtomicBool::new(false);
    let options = QueryOptions::default();
    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for _ in 0..4 {
            readers.push(scope.spawn(|| {
                let mut before = 0u64;
                let mut after = 0u64;
                while !done.load(Ordering::Acquire) {
                    let snap = cell.load();
                    match snap.query(&q2, &options).answer {
                        Ok(a) => {
                            let got: Vec<String> = a.codes.iter().map(|c| c.to_string()).collect();
                            assert_eq!(got, expected, "post-swap answer diverged");
                            after += 1;
                        }
                        Err(xvr_core::AnswerError::NotAnswerable) => before += 1,
                        Err(e) => panic!("reader saw a torn snapshot: {e}"),
                    }
                }
                (before, after)
            }));
        }
        // Let readers observe the old snapshot, then publish the new one.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(cell.swap(next), 1);
        std::thread::sleep(Duration::from_millis(20));
        done.store(true, Ordering::Release);
        let mut total_before = 0;
        let mut total_after = 0;
        for r in readers {
            let (before, after) = r.join().unwrap();
            total_before += before;
            total_after += after;
        }
        // Both sides of the swap were actually exercised.
        assert!(total_before > 0, "no reader saw the pre-swap snapshot");
        assert!(total_after > 0, "no reader saw the post-swap snapshot");
    });
    assert_eq!(cell.epoch(), 1);
}

// --- Server over real TCP ------------------------------------------------

/// End-to-end over TCP: ping, query, batch, stats, add-view (bumping the
/// epoch), error mapping for bad queries, and a malformed-but-well-framed
/// payload answered with `BadRequest` on a connection that stays usable.
#[test]
fn server_request_response_cycle() {
    let (engine, sources) = planted_engine(0.002);
    let server = Server::bind("127.0.0.1:0", engine, sources, ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());

    let mut client = Client::connect_retry(&addr, Duration::from_secs(5)).unwrap();
    assert!(matches!(
        client.call(&Request::Ping).unwrap(),
        Response::Pong
    ));

    // A planted query answers with the paper's HV strategy.
    let resp = client
        .call(&Request::Query {
            query: "/site/people/person[address/city][profile/age]/name".into(),
            options: WireOptions::default(),
        })
        .unwrap();
    match resp {
        Response::Answer {
            strategy,
            views_used,
            ..
        } => {
            assert_eq!(strategy, Strategy::Hv);
            assert!(views_used >= 1);
        }
        other => panic!("expected an answer, got {other:?}"),
    }

    // An unanswerable query maps to NotAnswerable, a syntax error to Input.
    let resp = client
        .call(&Request::Query {
            query: "/nowhere/to/be/found".into(),
            options: WireOptions::default(),
        })
        .unwrap();
    assert!(
        matches!(
            resp,
            Response::Error {
                status: Status::NotAnswerable,
                ..
            }
        ),
        "{resp:?}"
    );
    let resp = client
        .call(&Request::Query {
            query: "///".into(),
            options: WireOptions::default(),
        })
        .unwrap();
    assert!(
        matches!(
            resp,
            Response::Error {
                status: Status::Input,
                ..
            }
        ),
        "{resp:?}"
    );

    // Batch: per-item statuses in workload order.
    let mut queries: Vec<String> = test_queries().iter().map(|q| q.xpath.to_string()).collect();
    queries.insert(1, "///broken".into());
    let resp = client
        .call(&Request::Batch {
            queries,
            options: WireOptions::default(),
            jobs: 2,
        })
        .unwrap();
    match resp {
        Response::Batch { items, jobs, .. } => {
            assert_eq!(items.len(), 5);
            assert_eq!(jobs, 2);
            assert_eq!(items[1].status, Status::Input);
            for (i, item) in items.iter().enumerate() {
                if i != 1 {
                    assert_eq!(item.status, Status::Ok, "item {i}");
                    assert!(!item.codes.is_empty(), "item {i}");
                }
            }
        }
        other => panic!("expected a batch, got {other:?}"),
    }

    // A well-framed but undecodable payload: BadRequest, connection lives.
    let resp = client.call_raw(&[0x7f, 1, 2, 3]).unwrap();
    assert!(
        matches!(
            resp,
            Response::Error {
                status: Status::BadRequest,
                ..
            }
        ),
        "{resp:?}"
    );
    assert!(matches!(
        client.call(&Request::Ping).unwrap(),
        Response::Pong
    ));

    // add-view publishes a new snapshot and bumps the epoch.
    let resp = client
        .call(&Request::AddView {
            xpath: "/site/regions//item/name".into(),
        })
        .unwrap();
    match resp {
        Response::Swapped { epoch, views, .. } => {
            assert_eq!(epoch, 1);
            assert_eq!(views, 9); // 8 planted + 1
        }
        other => panic!("expected swapped, got {other:?}"),
    }
    let resp = client.call(&Request::Stats).unwrap();
    match resp {
        Response::Stats {
            epoch, requests, ..
        } => {
            assert_eq!(epoch, 1);
            assert!(requests >= 7);
        }
        other => panic!("expected stats, got {other:?}"),
    }

    assert!(matches!(
        client.call(&Request::Shutdown).unwrap(),
        Response::ShuttingDown
    ));
    handle.join().unwrap().unwrap();
}

/// The advisor over the wire: an `Advise` request against the resident
/// document returns a proposal that covers the workload, and the
/// connection keeps serving queries afterwards (the advisor is
/// read-only — no epoch bump). Bad inputs map to `Input` errors.
#[test]
fn server_advises_over_the_wire() {
    let (engine, sources) = planted_engine(0.002);
    let server = Server::bind("127.0.0.1:0", engine, sources, ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());

    let mut client = Client::connect_retry(&addr, Duration::from_secs(5)).unwrap();
    let queries: Vec<String> = test_queries().iter().map(|q| q.xpath.to_string()).collect();
    let resp = client.advise(queries.clone(), 64 << 20, 42).unwrap();
    match resp {
        Response::Advice {
            views,
            answered_weight,
            total_weight,
            total_bytes,
            ..
        } => {
            assert!(!views.is_empty(), "a covering set exists for the workload");
            assert_eq!(total_weight, queries.len() as u64);
            assert_eq!(answered_weight, total_weight, "workload fully covered");
            assert!(total_bytes <= 64 << 20, "budget respected");
            for v in &views {
                assert!(!v.xpath.is_empty());
            }
        }
        other => panic!("expected advice, got {other:?}"),
    }

    // An empty workload is the caller's mistake, not a crash.
    let resp = client.advise(Vec::new(), 64 << 20, 42).unwrap();
    assert!(
        matches!(
            resp,
            Response::Error {
                status: Status::Input,
                ..
            }
        ),
        "{resp:?}"
    );
    // So is an unparsable workload query.
    let resp = client.advise(vec!["///".into()], 64 << 20, 42).unwrap();
    assert!(
        matches!(
            resp,
            Response::Error {
                status: Status::Input,
                ..
            }
        ),
        "{resp:?}"
    );

    // The advisor is read-only: no snapshot swap, and queries still flow.
    let resp = client.call(&Request::Stats).unwrap();
    match resp {
        Response::Stats { epoch, .. } => assert_eq!(epoch, 0),
        other => panic!("expected stats, got {other:?}"),
    }
    assert!(matches!(
        client.call(&Request::Ping).unwrap(),
        Response::Pong
    ));

    assert!(matches!(
        client.call(&Request::Shutdown).unwrap(),
        Response::ShuttingDown
    ));
    handle.join().unwrap().unwrap();
}

/// The acceptance test of the hot-swap design: an open-loop load of the
/// Table III workload runs against the server while an admin connection
/// publishes a new snapshot every 2ms. Every request completes and none
/// fails — in-flight queries finish on the snapshot they pinned.
#[test]
fn hot_swap_under_load_drops_nothing() {
    let (engine, sources) = planted_engine(0.002);
    let server = Server::bind("127.0.0.1:0", engine, sources, ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());

    let config = LoadConfig {
        queries: test_queries().iter().map(|q| q.xpath.to_string()).collect(),
        options: WireOptions::default(),
        connections: 4,
        qps: 0.0,
        total: 400,
    };
    let swap_sources = [
        "/site/regions//item/name",
        "/site/people/person[@id]/name",
        "//open_auction[bidder]/current",
        "/site/catgraph/edge",
    ];
    let (report, swaps) = std::thread::scope(|scope| {
        let load = scope.spawn(|| run_load(&addr, &config).unwrap());
        let mut admin = Client::connect_retry(&addr, Duration::from_secs(5)).unwrap();
        let mut swaps = 0u64;
        while !load.is_finished() {
            let xpath = swap_sources[swaps as usize % swap_sources.len()].to_string();
            match admin.call(&Request::AddView { xpath }).unwrap() {
                Response::Swapped { epoch, .. } => {
                    swaps += 1;
                    assert_eq!(epoch, swaps);
                }
                other => panic!("add-view answered {other:?}"),
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        (load.join().unwrap(), swaps)
    });

    assert!(swaps > 0, "load outran the very first swap");
    assert_eq!(report.completed, 400, "requests were dropped");
    assert_eq!(report.errors, 0, "queries failed during swaps");
    assert_eq!(
        report.ok, 400,
        "the planted workload stayed answerable through every swap"
    );

    let mut admin = Client::connect_retry(&addr, Duration::from_secs(5)).unwrap();
    assert!(matches!(
        admin.call(&Request::Shutdown).unwrap(),
        Response::ShuttingDown
    ));
    handle.join().unwrap().unwrap();
}
