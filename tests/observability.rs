//! Integration tests of the observability layer and the unified
//! `EngineSnapshot::query` API on the XMark workload:
//!
//! * `QueryOptions` built via `default()`/`with_strategy` and via the
//!   wire protocol's `WireOptions` answer byte-identically to the
//!   `strategy(...)` constructor across all six strategies;
//! * merged batch counters are identical whether the batch ran on one
//!   worker thread or oversubscribed;
//! * with metrics collection off, nothing is ever recorded in the
//!   snapshot's cumulative accumulator;
//! * the `QueryOptions` builder and the crate-root re-exports of the
//!   request/response types work as documented.

use xvr_bench::{build_paper_engine, paper_document, xmark_queries};
// Every request/response/wire type must be reachable from the crate root.
use xvr_core::{
    Counter, EngineSnapshot, MetricsReport, QueryOptions, QueryReport, SnapshotMetrics,
    StageCounters, Strategy, WireOptions,
};
use xvr_pattern::TreePattern;

fn xmark_snapshot() -> (EngineSnapshot, Vec<TreePattern>) {
    let doc = paper_document(0.002, 7);
    let workload = build_paper_engine(doc, 40, 11, usize::MAX);
    let mut engine = workload.engine;
    let mut queries: Vec<TreePattern> = Vec::new();
    for (_, src) in xmark_queries() {
        let q = engine.parse(src).unwrap();
        engine.add_view(q.clone());
        queries.push(q);
    }
    queries.extend(workload.queries.into_iter().map(|(_, q)| q));
    (engine.snapshot(), queries)
}

/// Every way to build `QueryOptions` — the `strategy(...)` constructor,
/// `default().with_strategy(...)`, and decoding the wire protocol's
/// `WireOptions` — answers byte-identically for all six strategies, so
/// a served query and an embedded one cannot diverge.
#[test]
fn options_constructions_are_byte_identical() {
    let (snap, queries) = xmark_snapshot();
    let render = |r: &Result<xvr_core::Answer, xvr_core::AnswerError>| match r {
        Ok(a) => Ok(a.codes.iter().map(|c| c.to_string()).collect::<Vec<_>>()),
        Err(e) => Err(e.clone()),
    };
    assert_eq!(
        QueryOptions::default(),
        QueryOptions::strategy(Strategy::Hv)
    );
    for strategy in Strategy::all_extended() {
        let canonical = QueryOptions::strategy(strategy);
        let fluent = QueryOptions::default().with_strategy(strategy);
        let wired: QueryOptions = WireOptions::strategy(strategy).into();
        assert_eq!(fluent, canonical, "{strategy}");
        assert_eq!(wired, canonical, "{strategy}");
        for q in &queries {
            let reference = snap.query(q, &canonical).answer;
            assert_eq!(
                render(&snap.query(q, &fluent).answer),
                render(&reference),
                "{strategy}: with_strategy"
            );
            assert_eq!(
                render(&snap.query(q, &wired).answer),
                render(&reference),
                "{strategy}: via WireOptions"
            );
        }
        // And the round trip back to the wire preserves the switches.
        assert!(
            !QueryOptions::from(WireOptions::from(canonical.with_cache(false))).use_cache,
            "{strategy}"
        );
    }
}

/// Counter merging is commutative addition, so the merged batch counters
/// cannot depend on worker count or scheduling: jobs=1 and an
/// oversubscribed pool produce identical counters (on the uncached path —
/// shared-cache hit/miss counts legitimately depend on which worker warms
/// an entry first).
#[test]
fn batch_counters_deterministic_across_jobs() {
    let (snap, queries) = xmark_snapshot();
    for strategy in [Strategy::Mv, Strategy::Hv, Strategy::Cb] {
        let options = QueryOptions::strategy(strategy)
            .with_cache(false)
            .with_metrics();
        let reference = snap.query_batch(&queries, &options, 1).counters;
        assert!(!reference.is_zero(), "{strategy}: workload records nothing");
        for jobs in [2, 4, queries.len() + 29] {
            let merged = snap.query_batch(&queries, &options, jobs).counters;
            assert_eq!(merged, reference, "{strategy} jobs={jobs}");
        }
    }
}

/// With `collect_metrics` off (the default), queries leave no residue:
/// the snapshot's cumulative accumulator stays empty and the outcome
/// carries no report.
#[test]
fn disabled_metrics_record_nothing() {
    let (snap, queries) = xmark_snapshot();
    assert!(snap.metrics().is_empty());
    for strategy in Strategy::all_extended() {
        for q in &queries {
            let outcome = snap.query(q, &QueryOptions::strategy(strategy));
            assert!(outcome.report.is_none(), "{strategy}");
        }
    }
    snap.query_batch(&queries, &QueryOptions::strategy(Strategy::Hv), 4);
    // Trace-only collection must not record metrics either.
    snap.query(
        &queries[0],
        &QueryOptions::strategy(Strategy::Hv).with_trace(),
    );
    assert!(
        snap.metrics().is_empty(),
        "metrics recorded without collect_metrics"
    );
    assert_eq!(snap.metrics().queries(), 0);

    // And once requested, they do land.
    snap.query(
        &queries[0],
        &QueryOptions::strategy(Strategy::Hv).with_metrics(),
    );
    assert_eq!(snap.metrics().queries(), 1);
    assert!(!snap.metrics().is_empty());
}

/// The fluent builder composes, `QueryOptions` is `Copy`, and the
/// report's shape follows the switches exactly.
#[test]
fn query_options_builder_and_report_shape() {
    let options = QueryOptions::strategy(Strategy::Mv);
    assert!(options.use_cache && !options.collect_trace && !options.collect_metrics);
    let full = options.with_cache(false).with_trace().with_metrics();
    assert!(!full.use_cache && full.collect_trace && full.collect_metrics);
    // `options` is Copy: the builder returned new values, the original is
    // untouched.
    assert!(options.use_cache);

    let (snap, queries) = xmark_snapshot();
    let outcome = snap.query(&queries[0], &full);
    let report: QueryReport = outcome.report.expect("trace+metrics requested");
    let counters: StageCounters = report.counters.clone().expect("metrics requested");
    assert!(counters.get(Counter::FilterRuns) >= 1);
    assert!(report.trace.is_some());
    // Reports render human-readably with per-stage timings.
    let rendered = format!("{report}");
    assert!(rendered.contains("stages: filter"), "{rendered}");

    let metrics: &SnapshotMetrics = snap.metrics();
    let summary: MetricsReport = metrics.report();
    assert_eq!(summary.queries, 1);
    assert!(format!("{summary}").contains("queries: 1"));
}
