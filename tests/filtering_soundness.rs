//! Property tests for the filtering pipeline: VFILTER must never produce a
//! false negative, and normalization must preserve equivalence.

use proptest::prelude::*;

use xvr_core::filter::{build_nfa, filter_views};
use xvr_core::ViewSet;
use xvr_pattern::{
    contains, contains_complete, equivalent_complete, normalize, path_contains, Axis, PLabel,
    PathPattern, Step, TreePattern,
};
use xvr_xml::{Label, LabelTable};

/// A tiny shared alphabet keeps collision probability high, which is where
/// the interesting containments live.
fn alphabet() -> LabelTable {
    let mut t = LabelTable::new();
    for name in ["a", "b", "c"] {
        t.intern(name);
    }
    t
}

prop_compose! {
    /// Random step: axis × (a|b|c|*).
    fn step()(axis in 0..2, label in 0..4u32) -> Step {
        Step {
            axis: if axis == 0 { Axis::Child } else { Axis::Descendant },
            label: if label == 3 { PLabel::Wild } else { PLabel::Lab(Label::from_index(label as usize)) },
        }
    }
}

prop_compose! {
    fn path_pattern()(steps in prop::collection::vec(step(), 1..6)) -> PathPattern {
        PathPattern::new(steps)
    }
}

// Random small tree pattern: a path plus 0–2 branches.
prop_compose! {
    fn tree_pattern()(
        trunk in prop::collection::vec(step(), 1..4),
        branches in prop::collection::vec((0usize..3, prop::collection::vec(step(), 1..3)), 0..3),
    ) -> TreePattern {
        let mut p = TreePattern::with_root(trunk[0].axis, trunk[0].label);
        let mut cur = p.root();
        let mut trunk_nodes = vec![cur];
        for s in &trunk[1..] {
            cur = p.add_child(cur, s.axis, s.label);
            trunk_nodes.push(cur);
        }
        p.set_answer(cur);
        for (at, branch) in branches {
            let mut b = trunk_nodes[at % trunk_nodes.len()];
            for s in &branch {
                b = p.add_child(b, s.axis, s.label);
            }
        }
        p
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Normalization preserves equivalence (checked with the complete
    /// canonical-model procedure on the path's tree form).
    #[test]
    fn normalization_preserves_equivalence(p in path_pattern()) {
        let labels = alphabet();
        let n = normalize(&p);
        let tp = TreePattern::from(&p);
        let tn = TreePattern::from(&n);
        prop_assert!(equivalent_complete(&tp, &tn, &labels),
            "{} !~ {}", p.display(&labels), n.display(&labels));
    }

    /// Proposition 3.2: complete-equivalent paths have identical normal
    /// forms.
    #[test]
    fn equivalent_paths_normalize_identically(p in path_pattern(), q in path_pattern()) {
        let labels = alphabet();
        let tp = TreePattern::from(&p);
        let tq = TreePattern::from(&q);
        if equivalent_complete(&tp, &tq, &labels) {
            prop_assert_eq!(normalize(&p), normalize(&q),
                "{} ~ {} but normal forms differ", p.display(&labels), q.display(&labels));
        }
    }

    /// Normalized-homomorphism path containment is complete: it agrees with
    /// the canonical-model decision on the tree forms.
    #[test]
    fn path_containment_is_exact(sup in path_pattern(), sub in path_pattern()) {
        let labels = alphabet();
        let hom = path_contains(&sup, &sub);
        // Boolean containment: allow `sup` to stop early by padding it with
        // a final //* chain? No — compare against the complete decision on
        // boolean semantics directly: sub ⊑ sup as boolean patterns means
        // the canonical models of `sub` all satisfy `sup`.
        let tsup = TreePattern::from(&sup);
        let tsub = TreePattern::from(&sub);
        let complete = contains_complete(&tsup, &tsub, &labels);
        prop_assert_eq!(hom, complete,
            "{} vs {}", sup.display(&labels), sub.display(&labels));
    }

    /// Homomorphism containment on trees is sound w.r.t. the complete test.
    #[test]
    fn tree_hom_containment_is_sound(sup in tree_pattern(), sub in tree_pattern()) {
        let labels = alphabet();
        if contains(&sup, &sub) {
            prop_assert!(contains_complete(&sup, &sub, &labels),
                "hom claims {} ⊒ {}", sup.display(&labels), sub.display(&labels));
        }
    }

    /// VFILTER never filters a view that has a homomorphism into the query
    /// (no false negatives), for random view sets and queries.
    #[test]
    fn vfilter_has_no_false_negatives(
        view_patterns in prop::collection::vec(tree_pattern(), 1..8),
        q in tree_pattern(),
    ) {
        let labels = alphabet();
        let mut views = ViewSet::new();
        for v in &view_patterns {
            views.add(v.clone());
        }
        let nfa = build_nfa(&views);
        let outcome = filter_views(&q, &views, &nfa);
        for view in views.iter() {
            if contains(&view.pattern, &q) {
                prop_assert!(outcome.candidates.contains(&view.id),
                    "view {} contains {} but was filtered",
                    view.pattern.display(&labels), q.display(&labels));
            }
        }
    }

    /// Stronger: no false negatives even w.r.t. *complete* containment (the
    /// guarantee Proposition 3.1 + normalization gives).
    #[test]
    fn vfilter_no_false_negatives_complete(
        view_patterns in prop::collection::vec(tree_pattern(), 1..5),
        q in tree_pattern(),
    ) {
        let labels = alphabet();
        // The canonical-model sweep is exponential in the query's
        // descendant edges; skip pathological random inputs.
        let desc_edges = q.ids().filter(|&n| q.axis(n) == Axis::Descendant).count();
        prop_assume!(desc_edges <= 5);
        let mut views = ViewSet::new();
        for v in &view_patterns {
            views.add(v.clone());
        }
        let nfa = build_nfa(&views);
        let outcome = filter_views(&q, &views, &nfa);
        for view in views.iter() {
            if contains_complete(&view.pattern, &q, &labels) {
                prop_assert!(outcome.candidates.contains(&view.id),
                    "view {} completely contains {} but was filtered",
                    view.pattern.display(&labels), q.display(&labels));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Named regressions. These cases were once discovered by the property tests
// above and recorded in `filtering_soundness.proptest-regressions`; the
// vendored proptest stand-in does not read that file, so the shrunk inputs
// are reconstructed here as deterministic tests that always run.
// ---------------------------------------------------------------------------

fn lab(i: usize) -> PLabel {
    PLabel::Lab(Label::from_index(i))
}

fn vfilter_candidates_cover(view: &TreePattern, q: &TreePattern) {
    let labels = alphabet();
    let mut views = ViewSet::new();
    views.add(view.clone());
    let nfa = build_nfa(&views);
    let outcome = filter_views(q, &views, &nfa);
    for v in views.iter() {
        if contains(&v.pattern, q) {
            assert!(
                outcome.candidates.contains(&v.id),
                "view {} contains {} but was filtered",
                v.pattern.display(&labels),
                q.display(&labels)
            );
        }
    }
}

/// `/*` vs `//*`: homomorphism path containment must agree with the complete
/// canonical-model decision in both orientations. (First entry of the old
/// proptest-regressions file, from `path_containment_is_exact`.)
#[test]
fn regression_path_containment_child_vs_descendant_wildcard() {
    let labels = alphabet();
    let child_wild = PathPattern::new(vec![Step {
        axis: Axis::Child,
        label: PLabel::Wild,
    }]);
    let desc_wild = PathPattern::new(vec![Step {
        axis: Axis::Descendant,
        label: PLabel::Wild,
    }]);
    for (sup, sub) in [(&child_wild, &desc_wild), (&desc_wild, &child_wild)] {
        let hom = path_contains(sup, sub);
        let complete = contains_complete(&TreePattern::from(sup), &TreePattern::from(sub), &labels);
        assert_eq!(
            hom,
            complete,
            "{} vs {}",
            sup.display(&labels),
            sub.display(&labels)
        );
    }
    // Sanity on the actual decisions: as boolean patterns `/*` and `//*`
    // are equivalent (a document has a descendant iff it has a child), and
    // the original failure was the homomorphism test missing exactly that.
    assert!(path_contains(&desc_wild, &child_wild));
    assert!(path_contains(&child_wild, &desc_wild));
}

/// View `//*//a` (answer at `a`) vs query `/a[.//a]` (answer at the root):
/// the view has a homomorphism into the query, so VFILTER must keep it.
/// (Second entry of the old proptest-regressions file.)
#[test]
fn regression_vfilter_keeps_descendant_wild_view() {
    let mut view = TreePattern::with_root(Axis::Descendant, PLabel::Wild);
    let a = view.add_child(view.root(), Axis::Descendant, lab(0));
    view.set_answer(a);

    let mut q = TreePattern::with_root(Axis::Child, lab(0));
    q.add_child(q.root(), Axis::Descendant, lab(0));
    q.set_answer(q.root());

    assert!(contains(&view, &q), "shrunk case premise: view ⊒ query");
    vfilter_candidates_cover(&view, &q);
}

/// A branchy all-child view against an all-descendant query with three
/// `.//a//a` branches. The homomorphism needs to map distinct view branches
/// into overlapping query branches; VFILTER must not lose the view.
/// (Third entry of the old proptest-regressions file.)
#[test]
fn regression_vfilter_keeps_branchy_child_view() {
    // view = /a[a]/c[a/a]/a  with the answer on the trunk leaf `a`.
    let mut view = TreePattern::with_root(Axis::Child, lab(0));
    let c1 = view.add_child(view.root(), Axis::Child, lab(2));
    let answer = view.add_child(c1, Axis::Child, lab(0));
    view.add_child(view.root(), Axis::Child, lab(0));
    let a4 = view.add_child(c1, Axis::Child, lab(0));
    view.add_child(a4, Axis::Child, lab(0));
    view.set_answer(answer);

    // q = //a[.//a//a][.//a//a]//a//a with the answer two levels down the
    // first branch.
    let mut q = TreePattern::with_root(Axis::Descendant, lab(0));
    let b1 = q.add_child(q.root(), Axis::Descendant, lab(0));
    let answer = q.add_child(b1, Axis::Descendant, lab(0));
    let b2 = q.add_child(q.root(), Axis::Descendant, lab(0));
    q.add_child(b2, Axis::Descendant, lab(0));
    let b3 = q.add_child(q.root(), Axis::Descendant, lab(0));
    q.add_child(b3, Axis::Descendant, lab(0));
    q.set_answer(answer);

    vfilter_candidates_cover(&view, &q);
}
