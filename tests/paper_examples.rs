//! Every numbered example of the paper, end-to-end.

use xvr_core::{Engine, EngineConfig, Strategy, ViewId};
use xvr_pattern::{
    decompose, normalize, parse_pattern_with, path_contains, PathPattern, TreePattern,
};
use xvr_xml::samples::book_document;
use xvr_xml::LabelTable;

/// Example 2.1: the extended Dewey code `0.8.6` decodes to `b/s/s`, and
/// `t4 (0.8.6.0)` / `p3 (0.8.6.1)` share two `s`-labelled ancestors.
#[test]
fn example_2_1() {
    let doc = book_document();
    let names: Vec<&str> = doc
        .fst
        .decode(&[0, 8, 6])
        .unwrap()
        .into_iter()
        .map(|l| doc.labels.name(l))
        .collect();
    assert_eq!(names, ["b", "s", "s"]);
    let t4 = xvr_xml::DeweyCode(vec![0, 8, 6, 0]);
    let p3 = xvr_xml::DeweyCode(vec![0, 8, 6, 1]);
    let lca = t4.lca(&p3);
    assert_eq!(lca.components(), &[0, 8, 6]);
    let s = doc.labels.get("s").unwrap();
    let lca_path = doc.fst.decode(lca.components()).unwrap();
    assert_eq!(lca_path.iter().filter(|&&l| l == s).count(), 2);
}

/// Section II: the embedding `b[a]/t` into Figure 2.
#[test]
fn section_2_embedding() {
    let doc = book_document();
    let mut labels = doc.labels.clone();
    let p = parse_pattern_with("/b[a]/t", &mut labels).unwrap();
    let result = xvr_pattern::eval(&p, &doc.tree);
    assert_eq!(result.len(), 1, "the book has exactly one title child");
}

/// Section I example: //b/c answers //b/c/d but not //b//d//c or //a//b//c.
#[test]
fn section_1_rewriting_limits() {
    let mut labels = LabelTable::new();
    let path = |src: &str, labels: &mut LabelTable| -> PathPattern {
        let t = parse_pattern_with(src, labels).unwrap();
        PathPattern::try_from(&t).unwrap()
    };
    let view = path("//b/c", &mut labels);
    assert!(path_contains(&view, &path("//b/c/d", &mut labels)));
    assert!(!path_contains(&view, &path("//b//d//c", &mut labels)));
    assert!(!path_contains(&view, &path("//a//b//c", &mut labels)));
}

/// Examples 3.2 and 3.3: `s/*//t` is a false negative without
/// normalization; `N(s/*//t) = s//*/t` fixes it.
#[test]
fn examples_3_2_and_3_3() {
    let mut labels = LabelTable::new();
    let t = parse_pattern_with("/s/*//t", &mut labels).unwrap();
    let p = PathPattern::try_from(&t).unwrap();
    let n = normalize(&p);
    // The paper's normal form is s//*/t; ours is the equivalent
    // all-descendant spelling (see xvr-pattern::normalize docs).
    assert_eq!(n.display(&labels).to_string(), "/s//*//t");
    // Proposition 3.2: equivalent paths share a normal form.
    let t2 = parse_pattern_with("/s//*/t", &mut labels).unwrap();
    let p2 = PathPattern::try_from(&t2).unwrap();
    assert_eq!(n, normalize(&p2));
}

/// Example 3.4 + Example 4.3: filtering and heuristic selection for
/// `Q_e = s[f//i][t]/p` over Table I's views.
#[test]
fn examples_3_4_and_4_3() {
    // Table I (reconstructed): V1 = s[t]/p, V2 = s[.//*/t][f//i]//f,
    // V3 = s/p/*, V4 = s[p]/f (its Example 5.1 form). Example 3.4 keeps
    // {V1, V4} as candidates (V3 filtered) and Example 4.3 selects
    // {V1, V4} for rewriting.
    let doc = book_document();
    let mut engine = Engine::new(doc, EngineConfig::default());
    let v1 = engine.add_view_str("//s[t]/p").unwrap();
    let _v2 = engine.add_view_str("//s[.//*/t][f//i]//f").unwrap();
    let _v3 = engine.add_view_str("//s/p/*").unwrap();
    let v4 = engine.add_view_str("//s[p]/f").unwrap();
    let q = engine.parse("//s[f//i][t]/p").unwrap();

    let filtered = engine.filter(&q);
    assert!(filtered.candidates.contains(&v1));
    assert!(
        !filtered.candidates.contains(&ViewId(2)),
        "V3 must be filtered"
    );

    let answer = engine.answer(&q, Strategy::Hv).unwrap();
    assert_eq!(answer.views_used, vec![v1, v4]);
}

/// Example 5.1: rewriting `s[f//i][t]/p` with V1 = s[t]/p and V2 = s[p]/f
/// over Figure 2 yields `{p3, p4, p5, p6, p7}` without touching the base
/// document.
#[test]
fn example_5_1() {
    let doc = book_document();
    let mut engine = Engine::new(doc, EngineConfig::default());
    engine.add_view_str("//s[t]/p").unwrap();
    engine.add_view_str("//s[p]/f").unwrap();
    let q = engine.parse("//s[f//i][t]/p").unwrap();
    let a = engine.answer(&q, Strategy::Hv).unwrap();
    let codes: Vec<String> = a.codes.iter().map(|c| c.to_string()).collect();
    // p3 = 0.8.6.1, p4 = 0.8.6.5; p5/p6/p7 live in section 2's subtree.
    assert_eq!(codes.len(), 5);
    assert!(codes.contains(&"0.8.6.1".to_string()));
    assert!(codes.contains(&"0.8.6.5".to_string()));
    // p1 (0.8.1) and p2 (0.8.2.1) are filtered by the join.
    assert!(!codes.contains(&"0.8.1".to_string()));
    assert!(!codes.contains(&"0.8.2.1".to_string()));
    // Same answer as every baseline.
    let reference = engine.answer(&q, Strategy::Bn).unwrap();
    assert_eq!(a.codes, reference.codes);
}

/// Section III-A: the decomposition example D(Q_e) for Q_e = b[*//f//*]//*.
#[test]
fn section_3_decomposition() {
    let mut labels = LabelTable::new();
    let q: TreePattern = parse_pattern_with("/b[*//f//*]//*", &mut labels).unwrap();
    let d = decompose(&q);
    assert_eq!(d.len(), 2);
    let shown: Vec<String> = d
        .paths
        .iter()
        .map(|p| p.display(&labels).to_string())
        .collect();
    assert!(shown.contains(&"/b/*//f//*".to_string()), "{shown:?}");
    assert!(shown.contains(&"/b//*".to_string()), "{shown:?}");
}

/// The paper's intro example: `a[./b/d]/c ⊑ a[./b]/c`, and the containment
/// is witnessed by a homomorphism.
#[test]
fn intro_containment() {
    let mut labels = LabelTable::new();
    let view = parse_pattern_with("/a[b]/c", &mut labels).unwrap();
    let query = parse_pattern_with("/a[b/d]/c", &mut labels).unwrap();
    assert!(xvr_pattern::contains(&view, &query));
    assert!(xvr_pattern::contains_complete(&view, &query, &labels));
    assert!(!xvr_pattern::contains(&query, &view));
}
