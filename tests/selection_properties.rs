//! Properties of the selection algorithms: minimality of the heuristic,
//! minimum ≤ heuristic cardinality, and filter/selection consistency.

use proptest::prelude::*;

use xvr_core::filter::{build_nfa, filter_views};
use xvr_core::leafcover::Obligations;
use xvr_core::select::{select_heuristic, select_minimum};
use xvr_core::ViewSet;
use xvr_pattern::distinct_positive_patterns;
use xvr_pattern::generator::{QueryConfig, QueryGenerator};
use xvr_xml::generator::{generate, Config};

fn workload(
    doc_seed: u64,
    view_seed: u64,
    n_views: usize,
) -> (xvr_xml::Document, ViewSet, xvr_core::Nfa) {
    let doc = generate(&Config::tiny(doc_seed));
    let patterns =
        distinct_positive_patterns(&doc, QueryConfig::paper_view_workload(view_seed), n_views);
    let mut views = ViewSet::new();
    for p in patterns {
        views.add(p);
    }
    let nfa = build_nfa(&views);
    (doc, views, nfa)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The heuristic result is minimal: no unit can be dropped; and the
    /// exhaustive minimum never uses more views.
    #[test]
    fn heuristic_minimal_and_minimum_no_larger(
        doc_seed in 0u64..500,
        view_seed in 0u64..500,
        query_seed in 0u64..500,
    ) {
        let (doc, views, nfa) = workload(doc_seed, view_seed, 30);
        let mut gen = QueryGenerator::new(&doc.fst, QueryConfig::paper_query_workload(query_seed));
        for _ in 0..5 {
            let Some(q) = gen.generate_positive(&doc, 30) else { continue };
            let outcome = filter_views(&q, &views, &nfa);
            let ob = Obligations::of(&q);
            let heuristic = select_heuristic(&q, &views, &outcome, &ob);
            let minimum = select_minimum(&q, &views, &outcome.candidates, &ob, 4);
            match (&heuristic, &minimum) {
                (Some(h), Some(m)) => {
                    prop_assert!(
                        m.view_ids().len() <= h.view_ids().len(),
                        "minimum {} > heuristic {} on {}",
                        m.view_ids().len(), h.view_ids().len(), q.display(&doc.labels)
                    );
                }
                // The heuristic may fail where the exhaustive search
                // succeeds (greedy commitment), but not vice versa.
                (Some(_), None) => prop_assert!(false,
                    "heuristic answered but minimum did not: {}", q.display(&doc.labels)),
                _ => {}
            }
        }
    }

    /// Filtering does not change answerability: the minimum selection over
    /// all views succeeds iff it succeeds over the filtered candidates
    /// (VFILTER keeps every view that has a homomorphism into the query).
    #[test]
    fn filtering_preserves_answerability(
        doc_seed in 0u64..500,
        view_seed in 0u64..500,
        query_seed in 0u64..500,
    ) {
        let (doc, views, nfa) = workload(doc_seed, view_seed, 25);
        let all: Vec<_> = views.ids().collect();
        let mut gen = QueryGenerator::new(&doc.fst, QueryConfig::paper_query_workload(query_seed));
        for _ in 0..4 {
            let Some(q) = gen.generate_positive(&doc, 30) else { continue };
            let outcome = filter_views(&q, &views, &nfa);
            let ob = Obligations::of(&q);
            let unfiltered = select_minimum(&q, &views, &all, &ob, 3);
            let filtered = select_minimum(&q, &views, &outcome.candidates, &ob, 3);
            prop_assert_eq!(
                unfiltered.is_some(),
                filtered.is_some(),
                "filtering changed answerability of {}",
                q.display(&doc.labels)
            );
            if let (Some(u), Some(f)) = (unfiltered, filtered) {
                prop_assert_eq!(u.view_ids().len(), f.view_ids().len());
            }
        }
    }
}

/// The candidate set always contains every view the selection ends up
/// using (selection never reaches outside the filter output).
#[test]
fn selection_uses_only_candidates() {
    let (doc, views, nfa) = workload(3, 4, 40);
    let mut gen = QueryGenerator::new(&doc.fst, QueryConfig::paper_query_workload(5));
    for _ in 0..20 {
        let Some(q) = gen.generate_positive(&doc, 30) else {
            continue;
        };
        let outcome = filter_views(&q, &views, &nfa);
        let ob = Obligations::of(&q);
        if let Some(sel) = select_heuristic(&q, &views, &outcome, &ob) {
            for v in sel.view_ids() {
                assert!(outcome.candidates.contains(&v));
            }
        }
    }
}
