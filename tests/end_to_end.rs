//! End-to-end integration: the full store-and-query pipeline over
//! generated XMark-like documents, cross-checking every strategy against
//! direct evaluation.

use xvr_core::{AnswerError, Engine, EngineConfig, Strategy};
use xvr_pattern::generator::{QueryConfig, QueryGenerator};
use xvr_pattern::{distinct_positive_patterns, eval};
use xvr_xml::generator::{generate, Config};

/// Build an engine over a small generated document with `n_views` random
/// positive views.
fn build_engine(doc_seed: u64, view_seed: u64, n_views: usize) -> Engine {
    let doc = generate(&Config::tiny(doc_seed));
    let views =
        distinct_positive_patterns(&doc, QueryConfig::paper_view_workload(view_seed), n_views);
    let mut engine = Engine::new(doc, EngineConfig::default());
    for v in views {
        engine.add_view(v);
    }
    engine
}

#[test]
fn strategies_agree_on_random_workload() {
    let engine = build_engine(11, 12, 60);
    let doc = engine.doc().clone();
    let mut gen = QueryGenerator::new(&doc.fst, QueryConfig::paper_query_workload(13));
    let mut answered = 0usize;
    let mut attempted = 0usize;
    for _ in 0..40 {
        let Some(q) = gen.generate_positive(&doc, 50) else {
            continue;
        };
        attempted += 1;
        let reference = engine.answer(&q, Strategy::Bn).unwrap().codes;
        let bf = engine.answer(&q, Strategy::Bf).unwrap().codes;
        assert_eq!(bf, reference, "BF mismatch on {}", q.display(&doc.labels));
        for strategy in [Strategy::Mn, Strategy::Mv, Strategy::Hv, Strategy::Cb] {
            match engine.answer(&q, strategy) {
                Ok(a) => {
                    assert_eq!(
                        a.codes,
                        reference,
                        "{strategy} mismatch on {}",
                        q.display(&doc.labels)
                    );
                    answered += 1;
                }
                Err(AnswerError::NotAnswerable) => {}
                Err(e) => panic!("{strategy} failed on {}: {e}", q.display(&doc.labels)),
            }
        }
    }
    assert!(attempted >= 20, "query generator starved: {attempted}");
    assert!(
        answered >= 5,
        "no strategy ever answered from views ({answered} of {attempted})"
    );
}

#[test]
fn self_view_always_answers() {
    // Register each query as its own view: HV must answer it exactly.
    let doc = generate(&Config::tiny(21));
    let queries = distinct_positive_patterns(&doc, QueryConfig::paper_query_workload(22), 25);
    let mut engine = Engine::new(doc, EngineConfig::default());
    for q in &queries {
        engine.add_view(q.clone());
    }
    let doc = engine.doc().clone();
    for q in &queries {
        let reference: Vec<String> = eval(q, &doc.tree)
            .into_iter()
            .map(|n| doc.dewey.code_of(&doc.tree, n).to_string())
            .collect();
        let a = engine
            .answer(q, Strategy::Hv)
            .unwrap_or_else(|e| panic!("{} not answered: {e}", q.display(&doc.labels)));
        let got: Vec<String> = a.codes.iter().map(|c| c.to_string()).collect();
        assert_eq!(got, reference, "{}", q.display(&doc.labels));
    }
}

#[test]
fn mv_answers_subset_of_mn() {
    // MV sees only filtered candidates; anything MV answers, MN must too
    // (filtering never loses answerability).
    let engine = build_engine(31, 32, 40);
    let doc = engine.doc().clone();
    let mut gen = QueryGenerator::new(&doc.fst, QueryConfig::paper_query_workload(33));
    for _ in 0..20 {
        let Some(q) = gen.generate_positive(&doc, 50) else {
            continue;
        };
        let mv = engine.answer(&q, Strategy::Mv);
        let mn = engine.answer(&q, Strategy::Mn);
        if mv.is_ok() {
            assert!(mn.is_ok(), "{}", q.display(&doc.labels));
        }
    }
}

#[test]
fn fragment_budget_never_breaks_correctness() {
    // With a small byte cap some views get truncated; answers must remain
    // exact (truncated views are skipped, never misused).
    let doc = generate(&Config::tiny(41));
    let views = distinct_positive_patterns(&doc, QueryConfig::paper_view_workload(42), 40);
    let mut engine = Engine::new(
        doc,
        EngineConfig {
            fragment_budget: 8 * 1024,
            ..EngineConfig::default()
        },
    );
    for v in views {
        engine.add_view(v);
    }
    let doc = engine.doc().clone();
    let mut gen = QueryGenerator::new(&doc.fst, QueryConfig::paper_query_workload(43));
    for _ in 0..20 {
        let Some(q) = gen.generate_positive(&doc, 50) else {
            continue;
        };
        let reference = engine.answer(&q, Strategy::Bn).unwrap().codes;
        if let Ok(a) = engine.answer(&q, Strategy::Hv) {
            assert_eq!(a.codes, reference, "{}", q.display(&doc.labels));
        }
    }
}
