//! The headline correctness property: whenever the system answers a query
//! from materialized views, the answer equals direct evaluation on the base
//! document — across random documents, view sets, and queries.

use proptest::prelude::*;

use xvr_core::{AnswerError, Engine, EngineConfig, Strategy};
use xvr_pattern::distinct_positive_patterns;
use xvr_pattern::generator::{QueryConfig, QueryGenerator};
use xvr_xml::generator::{generate, Config};

fn run_trial(doc_seed: u64, view_seed: u64, query_seed: u64, n_views: usize) -> (usize, usize) {
    let doc = generate(&Config::tiny(doc_seed));
    let views =
        distinct_positive_patterns(&doc, QueryConfig::paper_view_workload(view_seed), n_views);
    let mut engine = Engine::new(doc, EngineConfig::default());
    for v in views {
        engine.add_view(v);
    }
    let doc = engine.doc().clone();
    let mut gen = QueryGenerator::new(&doc.fst, QueryConfig::paper_query_workload(query_seed));
    let mut answered = 0usize;
    let mut total = 0usize;
    for _ in 0..8 {
        let Some(q) = gen.generate_positive(&doc, 30) else {
            continue;
        };
        total += 1;
        let reference = engine.answer(&q, Strategy::Bn).unwrap().codes;
        for strategy in [Strategy::Mv, Strategy::Hv, Strategy::Cb] {
            match engine.answer(&q, strategy) {
                Ok(a) => {
                    assert_eq!(
                        a.codes,
                        reference,
                        "{strategy} wrong on {} (doc {doc_seed}, views {view_seed})",
                        q.display(&doc.labels)
                    );
                    answered += 1;
                }
                Err(AnswerError::NotAnswerable) => {}
                Err(e) => panic!("{strategy}: {e}"),
            }
        }
    }
    (answered, total)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random workloads: view answers must equal direct evaluation.
    #[test]
    fn view_answers_equal_direct_evaluation(
        doc_seed in 0u64..1000,
        view_seed in 0u64..1000,
        query_seed in 0u64..1000,
    ) {
        run_trial(doc_seed, view_seed, query_seed, 30);
    }
}

/// Aggregate sanity: across many seeds, a healthy fraction of queries is
/// actually answered from views (guards against vacuous success).
#[test]
fn answering_rate_is_nontrivial() {
    let mut answered = 0usize;
    let mut total = 0usize;
    for seed in 0..12u64 {
        let (a, t) = run_trial(seed, seed.wrapping_add(77), seed.wrapping_add(154), 40);
        answered += a;
        total += t;
    }
    assert!(total >= 50, "generator starved: {total}");
    assert!(
        answered * 10 >= total,
        "answered only {answered} of {total} strategy-queries"
    );
}
