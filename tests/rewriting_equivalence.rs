//! The headline correctness property: whenever the system answers a query
//! from materialized views, the answer equals direct evaluation on the base
//! document — across random documents, view sets, and queries.

use proptest::prelude::*;

use xvr_core::{AnswerError, Engine, EngineConfig, Strategy};
use xvr_pattern::distinct_positive_patterns;
use xvr_pattern::generator::{QueryConfig, QueryGenerator};
use xvr_xml::generator::{generate, Config};

fn run_trial(doc_seed: u64, view_seed: u64, query_seed: u64, n_views: usize) -> (usize, usize) {
    let doc = generate(&Config::tiny(doc_seed));
    let views =
        distinct_positive_patterns(&doc, QueryConfig::paper_view_workload(view_seed), n_views);
    let mut engine = Engine::new(doc, EngineConfig::default());
    for v in views {
        engine.add_view(v);
    }
    let doc = engine.doc().clone();
    let mut gen = QueryGenerator::new(&doc.fst, QueryConfig::paper_query_workload(query_seed));
    let mut answered = 0usize;
    let mut total = 0usize;
    for _ in 0..8 {
        let Some(q) = gen.generate_positive(&doc, 30) else {
            continue;
        };
        total += 1;
        let reference = engine.answer(&q, Strategy::Bn).unwrap().codes;
        for strategy in [Strategy::Mv, Strategy::Hv, Strategy::Cb] {
            match engine.answer(&q, strategy) {
                Ok(a) => {
                    assert_eq!(
                        a.codes,
                        reference,
                        "{strategy} wrong on {} (doc {doc_seed}, views {view_seed})",
                        q.display(&doc.labels)
                    );
                    answered += 1;
                }
                Err(AnswerError::NotAnswerable) => {}
                Err(e) => panic!("{strategy}: {e}"),
            }
        }
    }
    (answered, total)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random workloads: view answers must equal direct evaluation.
    #[test]
    fn view_answers_equal_direct_evaluation(
        doc_seed in 0u64..1000,
        view_seed in 0u64..1000,
        query_seed in 0u64..1000,
    ) {
        run_trial(doc_seed, view_seed, query_seed, 30);
    }
}

/// Join differential: the galloping flat-code join and the legacy
/// scan-merge join are byte-identical over random workloads, both
/// end-to-end (`EngineConfig::scan_join` routes the whole pipeline through
/// the scan join) and at the unit level (both joins run on the *same*
/// selection). The oracle sweeps the same property as
/// `join_equivalence` over full XMark-like cases in CI.
#[test]
fn galloping_and_scan_joins_agree() {
    let mut checked_engine = 0usize;
    let mut checked_unit = 0usize;
    for seed in 0..6u64 {
        let views = {
            let doc = generate(&Config::tiny(seed));
            distinct_positive_patterns(&doc, QueryConfig::paper_view_workload(seed + 31), 30)
        };
        let mut gallop = Engine::new(generate(&Config::tiny(seed)), EngineConfig::default());
        let mut scan = Engine::new(
            generate(&Config::tiny(seed)),
            EngineConfig {
                scan_join: true,
                ..EngineConfig::default()
            },
        );
        for v in views {
            gallop.add_view(v.clone());
            scan.add_view(v);
        }
        let doc = gallop.doc().clone();
        let snap = gallop.snapshot();
        let mut gen = QueryGenerator::new(
            &doc.fst,
            QueryConfig::paper_query_workload(seed.wrapping_add(62)),
        );
        for _ in 0..8 {
            let Some(q) = gen.generate_positive(&doc, 30) else {
                continue;
            };
            for strategy in [Strategy::Mv, Strategy::Hv] {
                let a = gallop.answer(&q, strategy);
                let b = scan.answer(&q, strategy);
                match (&a, &b) {
                    (Ok(x), Ok(y)) => {
                        assert_eq!(
                            x.codes,
                            y.codes,
                            "{strategy} joins disagree on {} (seed {seed})",
                            q.display(&doc.labels)
                        );
                        checked_engine += 1;
                    }
                    (Err(AnswerError::NotAnswerable), Err(AnswerError::NotAnswerable)) => {}
                    _ => panic!(
                        "{strategy} join answerability disagrees on {} (seed {seed}): {a:?} vs {b:?}",
                        q.display(&doc.labels)
                    ),
                }
            }
            // Unit level: run both joins on the identical selection.
            if let (Some(sel), _, _) = snap.lookup(&q, Strategy::Hv) {
                let g = xvr_core::rewrite(&q, &sel, snap.views(), snap.store(), &doc.fst).unwrap();
                let s =
                    xvr_core::rewrite_scan(&q, &sel, snap.views(), snap.store(), &doc.fst).unwrap();
                assert_eq!(g, s, "unit-level joins disagree (seed {seed})");
                checked_unit += 1;
            }
        }
    }
    assert!(
        checked_engine > 0 && checked_unit > 0,
        "differential never exercised the joins ({checked_engine}, {checked_unit})"
    );
}

/// Aggregate sanity: across many seeds, a healthy fraction of queries is
/// actually answered from views (guards against vacuous success).
#[test]
fn answering_rate_is_nontrivial() {
    let mut answered = 0usize;
    let mut total = 0usize;
    for seed in 0..12u64 {
        let (a, t) = run_trial(seed, seed.wrapping_add(77), seed.wrapping_add(154), 40);
        answered += a;
        total += t;
    }
    assert!(total >= 50, "generator starved: {total}");
    assert!(
        answered * 10 >= total,
        "answered only {answered} of {total} strategy-queries"
    );
}
