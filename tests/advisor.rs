//! Integration tests of the view advisor: HVI coverage feeding the set
//! ranking, end-to-end proposals on the paper's workload, and
//! determinism of the proposal across parallelism settings.

use xvr_bench::{paper_document, test_queries};
use xvr_core::{Advisor, AdvisorConfig, Workload};
use xvr_xml::parse_document;

/// The canonical intersection coverage-gain document (see
/// `intersection_rewriting.rs`): only the first `b` carries both an `x`
/// and a `y`, so `/a/b[x][y]//c` is answerable from `/a/b[x]//c` ∩
/// `/a/b[y]//c` and from no single one of them.
const GAIN_DOC: &str = "<a>\
     <b><x/><y/><d><c>1</c></d><c>2</c></b>\
     <b><x/><d><c>3</c></d></b>\
     <b><y/><c>4</c></b>\
     <b><c>5</c></b>\
     </a>";

/// HVI coverage feeds the score: a two-member view set that answers the
/// workload only through the intersection fallback outranks a set that
/// cannot answer at all, and the rescued weight is attributed to
/// `intersect_weight` (the per-query `intersect.answered` counter).
#[test]
fn intersection_view_set_outranks_a_non_covering_one() {
    let doc = parse_document(GAIN_DOC).unwrap();
    let workload = Workload::parse("/a/b[x][y]//c\n/a/b[x][y]//c\n/a/b[x][y]//c\n").unwrap();
    assert_eq!(workload.total_weight(), 3, "duplicates fold into weight");
    let advisor = Advisor::new(AdvisorConfig::default());

    let covering = advisor
        .score_set(&doc, &workload, &["/a/b[x]//c".into(), "/a/b[y]//c".into()])
        .unwrap();
    assert_eq!(covering.answered_weight, 3);
    assert_eq!(
        covering.intersect_weight, 3,
        "every answer came through the intersection fallback"
    );
    assert!(covering.measured_qps > 0.0);

    let starved = advisor
        .score_set(&doc, &workload, &["/a/b[x]//c".into()])
        .unwrap();
    assert_eq!(
        starved.answered_weight, 0,
        "one member alone cannot certify both predicates"
    );

    // The ranking consequence: more answered weight wins.
    assert!(covering.answered_weight > starved.answered_weight);
    assert!(covering.coverage() > starved.coverage());
}

/// End-to-end on the paper's document and Table III workload: the
/// advisor proposes a set that fully covers the workload, within budget.
#[test]
fn advisor_covers_the_paper_workload() {
    let doc = paper_document(0.002, 0x5eed);
    let sources: Vec<String> = test_queries().iter().map(|q| q.xpath.to_string()).collect();
    let workload = Workload::from_sources(sources.iter().map(String::as_str)).unwrap();
    let budget = 64 << 20;
    let proposal = Advisor::new(AdvisorConfig {
        budget,
        ..AdvisorConfig::default()
    })
    .advise(&doc, &workload)
    .unwrap();
    assert!(!proposal.views.is_empty());
    assert_eq!(
        proposal.score.answered_weight,
        workload.total_weight(),
        "the self-views of the workload always cover it: {}",
        proposal.fingerprint()
    );
    assert!(proposal.score.bytes <= budget, "budget violated");
    // Heaviest-first ordering of the chosen set.
    for pair in proposal.views.windows(2) {
        assert!(pair[0].weight >= pair[1].weight);
    }
}

/// Same document, workload, seed, and budget ⇒ the same proposal
/// fingerprint whether the throughput replay runs on one thread or an
/// oversubscribed pool. Wall-clock (`measured_qps`) is the only field
/// allowed to differ.
#[test]
fn proposal_is_deterministic_at_any_parallelism() {
    let doc = paper_document(0.002, 0x5eed);
    let sources: Vec<String> = test_queries().iter().map(|q| q.xpath.to_string()).collect();
    let workload = Workload::from_sources(sources.iter().map(String::as_str)).unwrap();
    let fingerprint = |jobs: usize| {
        Advisor::new(AdvisorConfig {
            budget: 64 << 20,
            jobs,
            ..AdvisorConfig::default()
        })
        .advise(&doc, &workload)
        .unwrap()
        .fingerprint()
    };
    let serial = fingerprint(1);
    assert_eq!(serial, fingerprint(16));
    assert_eq!(serial, fingerprint(1), "repeat runs agree with themselves");
}
