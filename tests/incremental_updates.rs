//! Document updates with incremental view maintenance: answers after
//! appends must equal a freshly built engine's, and unaffected views must
//! not be re-materialized.

use xvr_core::{Engine, EngineConfig, QueryOptions, Strategy};
use xvr_xml::samples::book_document;
use xvr_xml::{CodeStability, DeweyCode};

fn fresh_reference(engine: &Engine, views: &[&str], qsrc: &str) -> Vec<String> {
    // Rebuild an engine over the *updated* document and answer from views.
    let mut fresh = Engine::new(engine.doc().clone(), EngineConfig::default());
    for v in views {
        fresh.add_view_str(v).unwrap();
    }
    let q = fresh.parse(qsrc).unwrap();
    fresh
        .answer(&q, Strategy::Hv)
        .unwrap()
        .codes
        .iter()
        .map(|c| c.to_string())
        .collect()
}

#[test]
fn stable_append_updates_affected_views_only() {
    let views = ["//s[t]/p", "//s[p]/f", "//f/i"];
    let mut engine = Engine::new(book_document(), EngineConfig::default());
    for v in views {
        engine.add_view_str(v).unwrap();
    }
    // Append a paragraph under section 0.8.2 (which had no figure): known
    // label pair → stable codes.
    let stats = engine
        .append_xml(&"0.8.2".parse::<DeweyCode>().unwrap(), "<p>new</p>")
        .unwrap();
    assert_eq!(stats.stability, CodeStability::Stable);
    // Views mentioning p or s are affected; //f/i is not (no p, s labels).
    assert_eq!(stats.views_rematerialized, 2, "{stats:?}");
    assert_eq!(stats.views_skipped, 1);
    // Answers equal a fresh engine over the updated document.
    for qsrc in ["//s[t]/p", "//s[f//i][t]/p"] {
        let q = engine.parse(qsrc).unwrap();
        let got: Vec<String> = engine
            .answer(&q, Strategy::Hv)
            .unwrap()
            .codes
            .iter()
            .map(|c| c.to_string())
            .collect();
        assert_eq!(got, fresh_reference(&engine, &views, qsrc), "{qsrc}");
        // And equal direct evaluation.
        let direct: Vec<String> = engine
            .answer(&q, Strategy::Bn)
            .unwrap()
            .codes
            .iter()
            .map(|c| c.to_string())
            .collect();
        assert_eq!(got, direct, "{qsrc}");
    }
}

#[test]
fn alphabet_growing_append_rematerializes_everything() {
    let views = ["//s[t]/p", "//f/i"];
    let mut engine = Engine::new(book_document(), EngineConfig::default());
    for v in views {
        engine.add_view_str(v).unwrap();
    }
    // An author under a section: new (s, a) pair → re-encode.
    let stats = engine
        .append_xml(&"0.8".parse::<DeweyCode>().unwrap(), "<a>New Author</a>")
        .unwrap();
    assert_eq!(stats.stability, CodeStability::Reencoded);
    assert_eq!(stats.views_rematerialized, 2);
    assert_eq!(stats.views_skipped, 0);
    for qsrc in ["//s[t]/p", "//f/i", "//s[a]/p"] {
        let q = engine.parse(qsrc).unwrap();
        let hv = engine.answer(&q, Strategy::Hv);
        let direct = engine.answer(&q, Strategy::Bn).unwrap().codes;
        if let Ok(a) = hv {
            assert_eq!(a.codes, direct, "{qsrc}");
        }
    }
    // The section now has an author: //s[a]/p is non-empty.
    let q = engine.parse("//s[a]/p").unwrap();
    assert!(!engine.answer(&q, Strategy::Bn).unwrap().codes.is_empty());
}

#[test]
fn repeated_appends_stay_consistent() {
    let mut engine = Engine::new(book_document(), EngineConfig::default());
    engine.add_view_str("//s[t]/p").unwrap();
    let root_code: DeweyCode = "0".parse().unwrap();
    for i in 0..5 {
        let xml = format!("<s><t>new {i}</t><p>body {i}</p></s>");
        engine.append_xml(&root_code, &xml).unwrap();
    }
    let q = engine.parse("//s[t]/p").unwrap();
    let direct = engine.answer(&q, Strategy::Bn).unwrap().codes;
    let via_views = engine.answer(&q, Strategy::Hv).unwrap().codes;
    assert_eq!(via_views, direct);
    assert_eq!(direct.len(), 8 + 5);
}

/// Label-table sync across `append_xml`: a snapshot taken *before* an
/// append that interns a brand-new label must keep decoding the old label
/// space unchanged, while the writer resolves the new label immediately.
/// (Regression guard: the writer mutates its label table via
/// `Arc::make_mut`, which must copy-on-write rather than mutate the table
/// the frozen snapshot shares.)
#[test]
fn append_with_new_label_leaves_snapshot_frozen() {
    let mut engine = Engine::new(book_document(), EngineConfig::default());
    engine.add_view_str("//s[t]/p").unwrap();
    let frozen = engine.snapshot();
    let q_old = frozen.parse("//s[t]/p").unwrap();
    let before: Vec<String> = frozen
        .query(&q_old, &QueryOptions::strategy(Strategy::Hv))
        .answer
        .unwrap()
        .codes
        .iter()
        .map(|c| c.to_string())
        .collect();

    // `z` is not in the book alphabet: the append interns a new label.
    let root: DeweyCode = "0".parse().unwrap();
    engine.append_xml(&root, "<z><p>appendix</p></z>").unwrap();

    // The frozen snapshot neither sees the appended subtree nor the new
    // label: its answers are byte-identical, and parsing `//z` resolves to
    // a fresh non-matching label, so it evaluates to the empty answer.
    let after: Vec<String> = frozen
        .query(&q_old, &QueryOptions::strategy(Strategy::Hv))
        .answer
        .unwrap()
        .codes
        .iter()
        .map(|c| c.to_string())
        .collect();
    assert_eq!(after, before);
    let q_new = frozen.parse("//z/p").unwrap();
    assert!(frozen
        .query(&q_new, &QueryOptions::strategy(Strategy::Bn))
        .answer
        .unwrap()
        .codes
        .is_empty());

    // The writer resolves the new label: direct evaluation finds the
    // appended node, and a post-append snapshot decodes it too.
    let q_new = engine.parse("//z/p").unwrap();
    assert_eq!(engine.answer(&q_new, Strategy::Bn).unwrap().codes.len(), 1);
    let thawed = engine.snapshot();
    assert_eq!(
        thawed
            .query(&q_new, &QueryOptions::strategy(Strategy::Bn))
            .answer
            .unwrap()
            .codes
            .len(),
        1
    );
    // And the old query now also covers the appended <p> via its view
    // (the append rematerializes affected views in the writer).
    let q_old_w = engine.parse("//s[t]/p").unwrap();
    assert_eq!(
        engine.answer(&q_old_w, Strategy::Hv).unwrap().codes,
        engine.answer(&q_old_w, Strategy::Bn).unwrap().codes
    );
}

#[test]
fn update_errors() {
    let mut engine = Engine::new(book_document(), EngineConfig::default());
    let bad_code: DeweyCode = "9.9.9".parse().unwrap();
    assert!(matches!(
        engine.append_xml(&bad_code, "<p/>"),
        Err(xvr_core::UpdateError::NoSuchNode(_))
    ));
    let root: DeweyCode = "0".parse().unwrap();
    assert!(matches!(
        engine.append_xml(&root, "<unclosed>"),
        Err(xvr_core::UpdateError::Parse(_))
    ));
}
