//! Cross-thread determinism of the read path: one `EngineSnapshot` shared
//! by many threads must produce byte-identical answers to sequential
//! execution, for every strategy, on the XMark workload.

use xvr_bench::{build_paper_engine, paper_document, xmark_queries};
use xvr_core::{AnswerError, Engine, EngineConfig, EngineSnapshot, QueryOptions, Strategy};
use xvr_pattern::TreePattern;
use xvr_xml::samples::book_document;

/// Hand-rolled compile-time proof that the snapshot crosses threads: if
/// `EngineSnapshot` ever loses `Send + Sync`, this file stops compiling.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EngineSnapshot>();
    assert_send_sync::<&EngineSnapshot>();
};

fn xmark_snapshot() -> (EngineSnapshot, Vec<TreePattern>) {
    let doc = paper_document(0.002, 7);
    let workload = build_paper_engine(doc, 60, 11, usize::MAX);
    let mut engine = workload.engine;
    // Answer the XMark approximations plus Table III's Q1–Q4; every XMark
    // query is also registered as a view so the view strategies can cover
    // queries the planted views alone cannot.
    let mut queries: Vec<TreePattern> = Vec::new();
    for (_, src) in xmark_queries() {
        let q = engine.parse(src).unwrap();
        engine.add_view(q.clone());
        queries.push(q);
    }
    queries.extend(workload.queries.into_iter().map(|(_, q)| q));
    (engine.snapshot(), queries)
}

fn codes_of(outcomes: &[Result<xvr_core::Answer, AnswerError>]) -> Vec<Option<Vec<String>>> {
    outcomes
        .iter()
        .map(|o| {
            o.as_ref()
                .ok()
                .map(|a| a.codes.iter().map(|c| c.to_string()).collect())
        })
        .collect()
}

/// `query_batch` with `jobs >= 2` returns exactly what sequential
/// execution returns, in the same order, for all six strategies.
#[test]
fn batch_answers_are_deterministic_across_jobs() {
    let (snap, queries) = xmark_snapshot();
    for strategy in Strategy::all_extended() {
        let sequential = snap.query_batch(&queries, &QueryOptions::strategy(strategy), 1);
        assert_eq!(sequential.jobs, 1);
        for jobs in [2, 4, 7] {
            let parallel = snap.query_batch(&queries, &QueryOptions::strategy(strategy), jobs);
            assert_eq!(parallel.jobs, jobs.min(queries.len()));
            assert_eq!(
                codes_of(&parallel.answers),
                codes_of(&sequential.answers),
                "{strategy} with jobs={jobs}"
            );
        }
    }
}

/// N independent threads hammering one shared snapshot (not through
/// `query_batch` — each thread runs the whole query set itself) all see
/// the sequential answers.
#[test]
fn threads_sharing_one_snapshot_agree() {
    let (snap, queries) = xmark_snapshot();
    for strategy in [Strategy::Bn, Strategy::Hv, Strategy::Cb] {
        let expected: Vec<_> = queries
            .iter()
            .map(|q| {
                snap.query(q, &QueryOptions::strategy(strategy))
                    .answer
                    .map(|a| a.codes)
            })
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..6 {
                scope.spawn(|| {
                    for (q, want) in queries.iter().zip(&expected) {
                        let got = snap
                            .query(q, &QueryOptions::strategy(strategy))
                            .answer
                            .map(|a| a.codes);
                        match (&got, want) {
                            (Ok(g), Ok(w)) => assert_eq!(g, w, "{strategy}"),
                            (Err(g), Err(w)) => assert_eq!(g, w, "{strategy}"),
                            _ => panic!("{strategy}: outcome diverged across threads"),
                        }
                    }
                });
            }
        });
    }
}

/// Snapshot clones are as shareable as the original and observe the same
/// frozen state even while the engine keeps mutating on the main thread.
#[test]
fn clones_stay_frozen_while_engine_moves_on() {
    let doc = paper_document(0.002, 7);
    let workload = build_paper_engine(doc, 20, 11, usize::MAX);
    let mut engine = workload.engine;
    let q = engine
        .parse("/site/people/person[address/city][profile/age]/name")
        .unwrap();
    let snap = engine.snapshot();
    let clone = snap.clone();
    let want = snap
        .query(&q, &QueryOptions::strategy(Strategy::Hv))
        .answer
        .unwrap()
        .codes;

    let handle = std::thread::spawn(move || {
        clone
            .query(&q, &QueryOptions::strategy(Strategy::Hv))
            .answer
            .unwrap()
            .codes
    });
    // Meanwhile the writer keeps going; the spawned reader must not care.
    engine.add_view_str("//person[profile]/name").unwrap();
    assert_eq!(handle.join().unwrap(), want);
}

fn book_snapshot(views: &[&str], queries: &[&str]) -> (EngineSnapshot, Vec<TreePattern>) {
    let mut engine = Engine::new(book_document(), EngineConfig::default());
    for v in views {
        engine.add_view_str(v).unwrap();
    }
    let queries = queries
        .iter()
        .map(|src| engine.parse(src).unwrap())
        .collect();
    (engine.snapshot(), queries)
}

/// Degenerate `jobs` values: an empty query slice spawns nothing, `jobs = 0`
/// runs inline like `jobs = 1`, and `jobs` far beyond the query count is
/// clamped to it — all with identical answers.
#[test]
fn batch_jobs_edge_values_are_clamped() {
    let (snap, queries) = book_snapshot(&["//s[t]/p"], &["//s[t]/p", "/b//p", "//s/t"]);

    let empty = snap.query_batch(&[], &QueryOptions::strategy(Strategy::Hv), 8);
    assert!(empty.answers.is_empty());
    assert_eq!(empty.jobs, 1);
    assert_eq!(empty.answered(), 0);

    let zero = snap.query_batch(&queries, &QueryOptions::strategy(Strategy::Hv), 0);
    assert_eq!(zero.jobs, 1);

    let oversubscribed = snap.query_batch(
        &queries,
        &QueryOptions::strategy(Strategy::Hv),
        queries.len() + 61,
    );
    assert_eq!(oversubscribed.jobs, queries.len());
    assert_eq!(codes_of(&oversubscribed.answers), codes_of(&zero.answers));
}

/// A query erroring mid-batch must not disturb its neighbours: outcomes stay
/// in input order with errors in exactly the slots of the failing queries,
/// at every `jobs` level.
#[test]
fn batch_keeps_input_order_when_queries_error() {
    // The only view answers `p` nodes, so the `//f/i` queries are not
    // answerable by rewriting and fail under every view strategy.
    let (snap, queries) = book_snapshot(
        &["//s[t]/p"],
        &["//s[t]/p", "//f/i", "/b/s[t]/p", "//s//p", "/b//s[t]/p"],
    );
    let expected: Vec<_> = queries
        .iter()
        .map(|q| {
            snap.query(q, &QueryOptions::strategy(Strategy::Hv))
                .answer
                .map(|a| a.codes)
        })
        .collect();
    assert!(expected[0].is_ok() && expected[2].is_ok() && expected[4].is_ok());
    assert_eq!(expected[1], Err(AnswerError::NotAnswerable));
    assert_eq!(expected[3], Err(AnswerError::NotAnswerable));

    for jobs in [1, 2, 3, 5] {
        let batch = snap.query_batch(&queries, &QueryOptions::strategy(Strategy::Hv), jobs);
        assert_eq!(batch.answers.len(), queries.len());
        assert_eq!(batch.answered(), 3, "jobs={jobs}");
        for (i, (got, want)) in batch.answers.iter().zip(&expected).enumerate() {
            match (got, want) {
                (Ok(a), Ok(w)) => assert_eq!(&a.codes, w, "slot {i}, jobs={jobs}"),
                (Err(e), Err(w)) => assert_eq!(e, w, "slot {i}, jobs={jobs}"),
                _ => panic!("slot {i}, jobs={jobs}: outcome moved out of input order"),
            }
        }
    }
}
