//! A realistic scenario: an auction-site "dashboard" keeps a handful of
//! materialized views warm and answers analytical XPath queries from them,
//! comparing every strategy's latency against base evaluation.
//!
//! ```sh
//! cargo run --release --example auction_dashboard
//! ```

use std::time::Instant;

use xvr_core::{AnswerError, Engine, EngineConfig, QueryOptions, Strategy};
use xvr_xml::generator::{generate, Config};

fn main() {
    // A mid-size XMark-like site (~100k nodes at scale 0.01).
    let t0 = Instant::now();
    let doc = generate(&Config::scale(0.01));
    println!(
        "generated auction site: {} nodes, height {} ({:.1}s)",
        doc.len(),
        doc.tree.height(),
        t0.elapsed().as_secs_f64()
    );

    let mut engine = Engine::new(doc, EngineConfig::default());

    // Dashboard views: the fragments the site keeps materialized.
    let views = [
        "/site/open_auctions/open_auction[bidder]/current",
        "/site/open_auctions/open_auction[seller]/current",
        "/site/open_auctions/open_auction[annotation/author]/current",
        "/site/people/person[address/city]/name",
        "/site/people/person[profile/interest]/name",
        "/site/regions//item[incategory]/name",
        "/site/closed_auctions/closed_auction[buyer]/price",
        "//open_auction[bidder/increase]//interval/end",
    ];
    for src in views {
        let id = engine.add_view_str(src).unwrap();
        let mv = engine.store().get(id).unwrap();
        println!("view {src:<55} {} fragments", mv.fragments.len());
    }

    // The dashboard serves reads from a frozen snapshot — the writer can
    // keep registering views or appending data without disturbing it.
    let snapshot = engine.snapshot();

    // Dashboard queries (each answerable from one or more views).
    let queries = [
        "/site/open_auctions/open_auction[bidder][seller]/current",
        "/site/people/person[address/city][profile/interest]/name",
        "/site/open_auctions/open_auction[bidder][annotation/author]/current",
        "/site/closed_auctions/closed_auction[buyer]/price",
    ];

    println!("\n{:<68} {:>10} {:>10} {:>10}", "query", "BN", "BF", "HV");
    let mut parsed = Vec::new();
    for src in queries {
        let q = snapshot.parse(src).unwrap();
        print!("{src:<68}");
        let mut reference = None;
        for strategy in [Strategy::Bn, Strategy::Bf, Strategy::Hv] {
            match snapshot.query(&q, &QueryOptions::strategy(strategy)).answer {
                Ok(a) => {
                    if let Some(r) = &reference {
                        assert_eq!(&a.codes, r, "{src} {strategy}");
                    } else {
                        reference = Some(a.codes.clone());
                    }
                    print!(" {:>8}µs", a.timings.total_us());
                }
                Err(AnswerError::NotAnswerable) => print!(" {:>10}", "n/a"),
                Err(e) => panic!("{src}: {e}"),
            }
        }
        println!("   ({} results)", reference.map(|r| r.len()).unwrap_or(0));
        parsed.push(q);
    }
    println!("\nall view answers matched base evaluation ✓");

    // A busy dashboard answers whole batches: one shared snapshot, worker
    // threads, results in input order.
    let batch: Vec<_> = parsed.iter().cycle().take(64).cloned().collect();
    for jobs in [1, 4] {
        let t0 = Instant::now();
        let r = snapshot.query_batch(&batch, &QueryOptions::strategy(Strategy::Hv), jobs);
        println!(
            "batch of {} queries on {} thread(s): {:.0} queries/s (wall {:.1}ms)",
            batch.len(),
            r.jobs,
            r.qps(),
            t0.elapsed().as_secs_f64() * 1e3
        );
    }
}
