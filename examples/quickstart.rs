//! Quickstart: materialize two views over a document and answer a query
//! from them — without touching the base data.
//!
//! Writes go through [`Engine`]; reads go through an immutable
//! [`EngineSnapshot`] frozen from it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use xvr_core::{Engine, EngineConfig, QueryOptions, Strategy};
use xvr_xml::parse_document;

fn main() {
    // A small catalog document.
    let doc = parse_document(
        r#"<library>
            <shelf id="s1">
                <book><title>Data on the Web</title><author>Abiteboul</author><price>35</price></book>
                <book><title>XML Basics</title><price>12</price></book>
            </shelf>
            <shelf id="s2">
                <book><title>Streams</title><author>Golab</author><price>50</price></book>
                <journal><title>TODS</title></journal>
            </shelf>
        </library>"#,
    )
    .expect("well-formed XML");

    let mut engine = Engine::new(doc, EngineConfig::default());

    // Two materialized views: titles of authored books, and shelf books.
    let v1 = engine.add_view_str("//book[author]/title").unwrap();
    let v2 = engine.add_view_str("/library/shelf[book]/book").unwrap();
    println!("registered views: {v1:?}, {v2:?}");

    // Freeze the read path. The snapshot is immutable and `Send + Sync`;
    // later engine mutations never affect it.
    let snapshot = engine.snapshot();

    // A query asking for titles of authored books on shelves that hold
    // books — answerable from the two views together.
    let q = snapshot
        .parse("/library/shelf[book]/book[author]/title")
        .unwrap();

    // Answer using the heuristic multi-view strategy. `query` is the
    // single entry point; `QueryOptions` pick the strategy (and,
    // optionally, cache use and observability payload).
    let answer = snapshot
        .query(&q, &QueryOptions::strategy(Strategy::Hv))
        .answer
        .expect("answerable from views");
    println!(
        "answered with {} view(s): {:?}",
        answer.views_used.len(),
        answer.views_used
    );
    for code in &answer.codes {
        println!("  answer node at extended Dewey code {code}");
    }

    // Cross-check against direct evaluation on the base document.
    let direct = snapshot
        .query(&q, &QueryOptions::strategy(Strategy::Bn))
        .answer
        .unwrap();
    assert_eq!(answer.codes, direct.codes);
    println!("matches direct evaluation ✓");

    // Ask for the observability payload: per-stage timings, pipeline
    // counters, and the answer trace, in one report.
    let outcome = snapshot.query(
        &q,
        &QueryOptions::strategy(Strategy::Hv)
            .with_trace()
            .with_metrics(),
    );
    println!("{}", outcome.report.expect("requested via with_*"));

    // Batches fan out over worker threads; results come back in order.
    let batch = snapshot.query_batch(&[q.clone(), q], &QueryOptions::strategy(Strategy::Hv), 2);
    assert_eq!(batch.answered(), 2);
    println!(
        "batch of 2 on {} thread(s): {:.0} queries/s",
        batch.jobs,
        batch.qps()
    );

    // Stage timings.
    let t = answer.timings;
    println!(
        "filter {}µs + select {}µs + rewrite {}µs = {}µs total",
        t.filter_us,
        t.selection_us,
        t.rewrite_us,
        t.total_us()
    );
}
