//! A "view advisor" session: given thousands of candidate views, show how
//! VFILTER prunes them for a query, and compare the heuristic (minimal)
//! against the exhaustive (minimum) selection.
//!
//! ```sh
//! cargo run --release --example view_advisor
//! ```

use std::time::Instant;

use xvr_core::filter::build_nfa;
use xvr_core::leafcover::Obligations;
use xvr_core::select::{select_heuristic, select_minimum};
use xvr_core::ViewSet;
use xvr_pattern::generator::QueryConfig;
use xvr_pattern::{distinct_patterns, exists_hom, parse_pattern_in};
use xvr_xml::generator::{generate, Config};

fn main() {
    let doc = generate(&Config::tiny(1));
    // 2000 candidate view definitions (not materialized — the advisor only
    // reasons about answerability).
    let patterns = distinct_patterns(
        &doc.fst,
        &doc.labels,
        QueryConfig::paper_view_workload(17),
        2000,
    );
    let mut views = ViewSet::new();
    for p in &patterns {
        views.add(p.clone());
    }
    let t0 = Instant::now();
    let nfa = build_nfa(&views);
    println!(
        "VFILTER over {} views: {} states, {} transitions, {} bytes (built in {:.0}ms)",
        views.len(),
        nfa.state_count(),
        nfa.transition_count(),
        nfa.serialized_size(),
        t0.elapsed().as_secs_f64() * 1e3
    );

    let queries = [
        "/site/people/person[profile/age]/name",
        "//open_auction[bidder]//increase",
        "/site/regions/europe/item[name]/description//text",
    ];
    for src in queries {
        // Read-only parse against the document's frozen label table —
        // unknown names would resolve to fresh non-matching labels.
        let q = parse_pattern_in(src, &doc.labels).unwrap();
        let t0 = Instant::now();
        let outcome = xvr_core::filter_views(&q, &views, &nfa);
        let filter_us = t0.elapsed().as_micros();
        // Ground truth: views with a homomorphism into the query.
        let v_q = views.iter().filter(|v| exists_hom(&v.pattern, &q)).count();
        println!("\nquery {src}");
        println!(
            "  VFILTER kept {} of {} views in {}µs (true containing views: {}, utility {:.2})",
            outcome.candidates.len(),
            views.len(),
            filter_us,
            v_q,
            if v_q > 0 {
                outcome.candidates.len() as f64 / v_q as f64
            } else {
                f64::NAN
            }
        );
        let ob = Obligations::of(&q);
        match select_heuristic(&q, &views, &outcome, &ob) {
            Some(sel) => {
                println!(
                    "  heuristic selection: {} view(s): {}",
                    sel.view_ids().len(),
                    sel.units
                        .iter()
                        .map(|u| views.view(u.view).pattern.display(&doc.labels).to_string())
                        .collect::<Vec<_>>()
                        .join("  +  ")
                );
                if let Some(min) = select_minimum(&q, &views, &outcome.candidates, &ob, 3) {
                    println!("  minimum selection:   {} view(s)", min.view_ids().len());
                }
            }
            None => println!("  not answerable from the candidate views"),
        }
    }
}
