//! The paper's running example, end to end: Figure 2's `book.xml`, the
//! Table I views, query `Q_e = s[f//i][t]/p`, and the Example 5.1
//! rewriting that yields `{p3, p4, p5, p6, p7}`.
//!
//! ```sh
//! cargo run --example book_catalog
//! ```

use xvr_core::{Engine, EngineConfig, QueryOptions, Strategy};
use xvr_xml::samples::book_document;
use xvr_xml::serializer::serialize_pretty;

fn main() {
    let doc = book_document();
    println!(
        "book.xml ({} nodes):\n{}",
        doc.len(),
        serialize_pretty(&doc.tree, &doc.labels)
    );

    // Extended Dewey: every node's code decodes to its label-path.
    println!("Example 2.1: code 0.8.6 decodes to {}", {
        let path = doc.fst.decode(&[0, 8, 6]).unwrap();
        path.iter()
            .map(|&l| doc.labels.name(l))
            .collect::<Vec<_>>()
            .join("/")
    });

    let mut engine = Engine::new(doc, EngineConfig::default());
    // Table I's views (V4 in its Example 5.1 spelling).
    let views = ["//s[t]/p", "//s[.//*/t][f//i]//f", "//s/p/*", "//s[p]/f"];
    for (i, src) in views.iter().enumerate() {
        let id = engine.add_view_str(src).unwrap();
        let mv = engine.store().get(id).unwrap();
        println!(
            "V{} = {:<22} materialized {} fragments ({} bytes)",
            i + 1,
            src,
            mv.fragments.len(),
            mv.size_bytes()
        );
    }

    // All reads below go through a frozen snapshot of the engine.
    let snapshot = engine.snapshot();
    let q = snapshot.parse("//s[f//i][t]/p").unwrap();
    println!("\nquery Q_e = //s[f//i][t]/p");

    // Stage 1: VFILTER.
    let filtered = snapshot.filter(&q);
    println!(
        "VFILTER candidates: {:?} (of {} views, {} query paths)",
        filtered.candidates,
        snapshot.views().len(),
        filtered.query_path_count
    );

    // Stage 2 + 3: selection and rewriting, via each strategy.
    for strategy in [Strategy::Mv, Strategy::Hv] {
        let a = snapshot
            .query(&q, &QueryOptions::strategy(strategy))
            .answer
            .unwrap();
        println!(
            "{}: views {:?} → {} answers: {}",
            strategy,
            a.views_used,
            a.codes.len(),
            a.codes
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    // The paper's expected result: the five paragraphs of sections that
    // also contain a figure.
    let reference = snapshot
        .query(&q, &QueryOptions::strategy(Strategy::Bn))
        .answer
        .unwrap();
    assert_eq!(reference.codes.len(), 5);
    println!("\nExample 5.1 reproduced: {{p3, p4, p5, p6, p7}} ✓");
}
