//! Minimal, dependency-free stand-in for the `criterion` benchmark harness.
//!
//! This workspace builds in environments with no access to crates.io, so
//! the subset of `criterion` its benches use is vendored here:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! [`BenchmarkGroup::sample_size`] / [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. No statistics engine, no HTML reports:
//! each benchmark runs a short warm-up, then `sample_size` timed samples,
//! and prints min / median / mean per iteration.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export-compatible `black_box` (benches commonly import it from here).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

const DEFAULT_SAMPLE_SIZE: usize = 100;
const WARM_UP: Duration = Duration::from_millis(300);
const TARGET_MEASURE: Duration = Duration::from_secs(2);

/// Runs one benchmark body repeatedly and records per-sample timings.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples_ns: Vec::new(),
        }
    }

    /// Time `f`, called in batches sized so the whole run stays bounded.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARM_UP {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;

        // Size batches so `sample_size` samples fit in the target budget.
        let budget_ns = TARGET_MEASURE.as_nanos() as f64 / self.sample_size as f64;
        let batch = ((budget_ns / per_iter.max(1.0)) as u64).clamp(1, 1_000_000);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples_ns
                .push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    fn report(&self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        println!(
            "{id:<40} min {} | median {} | mean {}",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else {
        format!("{:8.3} ms", ns / 1_000_000.0)
    }
}

/// Two-part benchmark identifier, rendered as `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<F: Display, P: Display>(function_name: F, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// The harness entry point; hands out groups and runs standalone functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(id);
        self
    }

    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: group_name.into(),
            sample_size,
        }
    }
}

/// A named group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{id}", self.name));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    pub fn finish(self) {}
}

/// Bundle benchmark functions into a group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats_as_function_slash_parameter() {
        assert_eq!(BenchmarkId::new("join", 4).id, "join/4");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn group_runs_bodies() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        // sample_size(1) keeps the self-test fast; iter() is exercised by benches.
        group
            .sample_size(1)
            .bench_with_input(BenchmarkId::new("f", 1), &3, |_b, &x| {
                ran = x == 3;
            });
        group.finish();
        assert!(ran);
    }
}
