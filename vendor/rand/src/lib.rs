//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no access to crates.io, so
//! the tiny slice of `rand` it actually uses is vendored here:
//! [`rngs::StdRng`] with [`SeedableRng::seed_from_u64`], and the
//! [`Rng::gen_range`] / [`Rng::gen_bool`] sampling methods over integer
//! ranges. The generator is SplitMix64 — fast, passes standard
//! statistical tests, and fully deterministic from a seed, which is all
//! the in-repo XMark/query generators need. The byte streams differ from
//! the real `rand::StdRng` (ChaCha12), so seeds produce *different but
//! equally stable* workloads.
//!
//! Everything is sampled via modulo reduction; the bias is at most
//! `width / 2^64`, irrelevant for workload synthesis.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: 64 bits at a time.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (the only constructor this workspace uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// A type that can be sampled uniformly from a range.
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[low, high)`. `high > low` required.
    fn sample_half_open(rng: &mut dyn FnMut() -> u64, low: Self, high: Self) -> Self;
    /// Sample uniformly from `[low, high]`. `high >= low` required.
    fn sample_inclusive(rng: &mut dyn FnMut() -> u64, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn FnMut() -> u64, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let width = (high as $wide).wrapping_sub(low as $wide) as u64;
                low.wrapping_add((rng() % width) as $t)
            }
            fn sample_inclusive(rng: &mut dyn FnMut() -> u64, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let width = (high as $wide).wrapping_sub(low as $wide) as u64;
                if width == u64::MAX {
                    return rng() as $t;
                }
                low.wrapping_add((rng() % (width + 1)) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
);

/// A range a value can be drawn from (mirrors `rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value.
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range` (`low..high` or `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(&mut || self.next_u64())
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        // 53 uniform mantissa bits, the usual float-in-[0,1) construction.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    ///
    /// Not the real `rand::StdRng` (ChaCha12) — streams differ per seed,
    /// but determinism and statistical quality hold.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&y));
            let z = rng.gen_range(-4i32..4);
            assert!((-4..4).contains(&z));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..1 << 32) == b.gen_range(0u64..1 << 32))
            .count();
        assert!(same < 4);
    }
}
