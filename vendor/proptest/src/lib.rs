//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! This workspace builds in environments with no access to crates.io, so
//! the subset of `proptest` its property tests use is vendored here:
//!
//! - the [`proptest!`] and [`prop_compose!`] macros (with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`),
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`],
//! - integer-range strategies, `any::<bool>()`, tuples up to arity 6,
//!   `prop::collection::vec`, `prop::option::of`, a regex-subset string
//!   strategy (char classes + `{m,n}` quantifiers), `.prop_map`,
//!   `.prop_recursive`, and [`strategy::BoxedStrategy`].
//!
//! Semantics differ from real proptest in one deliberate way: there is
//! **no shrinking**. A failing case panics with the assertion message;
//! inputs are deterministic per test (seeded from the test's module path
//! and name), so failures reproduce exactly under `cargo test`.

pub mod test_runner {
    //! Test configuration, RNG, and case outcomes.

    /// Deterministic RNG handed to strategies (SplitMix64).
    ///
    /// Seeded from the owning test's fully-qualified name so every run of
    /// `cargo test` explores the same inputs — failures always reproduce.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary tag (FNV-1a of the bytes).
        pub fn deterministic(tag: &str) -> TestRng {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in tag.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: hash }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: usize) -> usize {
            debug_assert!(n > 0);
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Runner configuration; only `cases` is honoured here.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of *accepted* (non-rejected) cases each test runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases, otherwise default.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion failed; aborts the whole test.
        Fail(String),
        /// `prop_assume!` filtered the input out; another case is drawn.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    /// Outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators (generate-only, no shrinking).

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree and no shrinking:
    /// `generate` draws one concrete value.
    pub trait Strategy {
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Build a recursive strategy: `self` generates leaves, `recurse`
        /// wraps a strategy for subtrees into one for branches. `depth`
        /// bounds nesting; the size/branch hints are accepted for API
        /// compatibility but unused.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(strat).boxed();
                strat = Choice {
                    leaf: leaf.clone(),
                    deeper,
                }
                .boxed();
            }
            strat
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Rc::new(self),
            }
        }
    }

    /// Object-safe view of [`Strategy`] for [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn dyn_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        inner: Rc<dyn DynStrategy<T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Rc::clone(&self.inner),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.dyn_generate(rng)
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// 50/50 pick between the leaf and the deeper strategy; the building
    /// block of [`Strategy::prop_recursive`]. The even split plus the
    /// per-level cap keeps generated trees shallow on average.
    struct Choice<T> {
        leaf: BoxedStrategy<T>,
        deeper: BoxedStrategy<T>,
    }

    impl<T> Strategy for Choice<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            if rng.next_u64() & 1 == 0 {
                self.leaf.generate(rng)
            } else {
                self.deeper.generate(rng)
            }
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy range is empty");
                    let width = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add((rng.next_u64() % width) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "strategy range is empty");
                    let width = (hi as u64).wrapping_sub(lo as u64);
                    if width == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add((rng.next_u64() % (width + 1)) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// String strategies from a small regex subset.
    ///
    /// Supported: literal characters, `\`-escapes, character classes with
    /// ranges (`[a-z<&" ]`), and the quantifiers `{n}`, `{m,n}`, `?`, `*`,
    /// `+` (the open-ended ones capped at 8 repetitions). Anything else
    /// panics with the offending pattern, loudly, at generation time.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let atoms = compile_regex_subset(self);
            let mut out = String::new();
            for atom in &atoms {
                let count = atom.min + rng.below(atom.max - atom.min + 1);
                for _ in 0..count {
                    out.push(atom.chars[rng.below(atom.chars.len())]);
                }
            }
            out
        }
    }

    struct Atom {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    fn compile_regex_subset(pattern: &str) -> Vec<Atom> {
        let mut atoms = Vec::new();
        let mut input = pattern.chars().peekable();
        while let Some(c) = input.next() {
            let chars = match c {
                '[' => {
                    let mut set = Vec::new();
                    loop {
                        match input.next() {
                            Some(']') => break,
                            Some('\\') => set.push(input.next().unwrap_or_else(|| {
                                panic!("unterminated escape in regex {pattern:?}")
                            })),
                            Some(lo) => {
                                if input.peek() == Some(&'-') {
                                    let mut ahead = input.clone();
                                    ahead.next();
                                    match ahead.peek() {
                                        Some(&hi) if hi != ']' => {
                                            input.next();
                                            input.next();
                                            set.extend(lo..=hi);
                                        }
                                        _ => set.push(lo),
                                    }
                                } else {
                                    set.push(lo);
                                }
                            }
                            None => panic!("unterminated character class in regex {pattern:?}"),
                        }
                    }
                    assert!(
                        !set.is_empty(),
                        "empty character class in regex {pattern:?}"
                    );
                    set
                }
                '\\' => vec![input
                    .next()
                    .unwrap_or_else(|| panic!("unterminated escape in regex {pattern:?}"))],
                '(' | ')' | '|' | '.' | '^' | '$' => {
                    panic!("regex feature {c:?} not supported by vendored proptest: {pattern:?}")
                }
                literal => vec![literal],
            };
            let (min, max) = match input.peek() {
                Some('{') => {
                    input.next();
                    let mut body = String::new();
                    for d in input.by_ref() {
                        if d == '}' {
                            break;
                        }
                        body.push(d);
                    }
                    match body.split_once(',') {
                        None => {
                            let n = body.trim().parse().unwrap_or_else(|_| {
                                panic!("bad quantifier {{{body}}} in regex {pattern:?}")
                            });
                            (n, n)
                        }
                        Some((m, "")) => {
                            let m: usize = m.trim().parse().unwrap_or_else(|_| {
                                panic!("bad quantifier {{{body}}} in regex {pattern:?}")
                            });
                            (m, m + 8)
                        }
                        Some((m, n)) => {
                            let m = m.trim().parse().unwrap_or_else(|_| {
                                panic!("bad quantifier {{{body}}} in regex {pattern:?}")
                            });
                            let n = n.trim().parse().unwrap_or_else(|_| {
                                panic!("bad quantifier {{{body}}} in regex {pattern:?}")
                            });
                            assert!(m <= n, "bad quantifier {{{body}}} in regex {pattern:?}");
                            (m, n)
                        }
                    }
                }
                Some('?') => {
                    input.next();
                    (0, 1)
                }
                Some('*') => {
                    input.next();
                    (0, 8)
                }
                Some('+') => {
                    input.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            atoms.push(Atom { chars, min, max });
        }
        atoms
    }
}

pub mod arbitrary {
    //! `any::<T>()` — canonical strategies per type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;

        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    /// Fair coin.
    #[derive(Clone, Debug)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 0
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;

        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                type Strategy = std::ops::RangeInclusive<$t>;

                fn arbitrary() -> Self::Strategy {
                    <$t>::MIN..=<$t>::MAX
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    /// `Vec<T>` strategy: length drawn from `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max_inclusive - self.size.min + 1;
            let len = self.size.min + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option<T>` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `Option<T>` strategy: `None` one time in four, else `Some`.
    pub fn of<S: Strategy>(strategy: S) -> OptionStrategy<S> {
        OptionStrategy { inner: strategy }
    }

    /// Output of [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, proptest,
    };

    /// Module-style access (`prop::collection::vec`, `prop::option::of`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Define property tests. Each `fn` runs `config.cases` accepted cases
/// with inputs drawn from the given strategies; a failing `prop_assert!`
/// panics (no shrinking), a `prop_assume!` rejection redraws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(1_000);
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest: gave up after {} attempts ({} of {} cases accepted) — \
                     prop_assume! rejects too much",
                    attempts,
                    accepted,
                    config.cases,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: $crate::test_runner::TestCaseResult = (move || {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(reason)) => {
                        panic!("proptest case failed: {reason}");
                    }
                }
            }
        }
    )*};
}

/// Define a named strategy as a function: draw the inner bindings, then
/// map them through the body. Mirrors proptest's `prop_compose!`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($param:ident: $pty:ty),* $(,)?)
            ($($arg:pat in $strat:expr),+ $(,)?)
            -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*) -> impl $crate::strategy::Strategy<Value = $out> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)+),
                move |($($arg,)+)| $body,
            )
        }
    };
}

/// Fail the current case (returns `Err(TestCaseError::Fail)`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}",
            l,
            r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}\n{}",
            l,
            r,
            format!($($fmt)+),
        );
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  left: {:?}\n right: {:?}",
            l,
            r,
        );
    }};
}

/// Reject the current case (redraw) unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn pair()(a in 0u8..10, b in 10u8..20) -> (u8, u8) {
            (a, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respected(x in 3usize..9, y in 0u64..=5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y <= 5);
        }

        #[test]
        fn composed_strategies_work(p in pair(), flip in any::<bool>()) {
            prop_assert!(p.0 < 10 && (10..20).contains(&p.1));
            prop_assert_eq!(flip, flip);
        }

        #[test]
        fn vectors_and_options(v in prop::collection::vec(0u32..4, 1..5), o in prop::option::of(0i32..3)) {
            prop_assert!((1..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 4));
            if let Some(x) = o {
                prop_assert!((0..3).contains(&x));
            }
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn regex_subset_strings(s in "[a-c<&\" ]{0,8}") {
            prop_assert!(s.chars().count() <= 8);
            prop_assert!(s.chars().all(|c| matches!(c, 'a'..='c' | '<' | '&' | '"' | ' ')));
        }
    }

    #[derive(Clone, Debug, PartialEq)]
    enum Tree {
        Leaf(u8),
        Node(Vec<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 1,
            Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn recursive_strategies_bound_depth(
            t in (0u8..16).prop_map(Tree::Leaf).prop_recursive(4, 32, 4, |inner| {
                prop::collection::vec(inner, 1..4).prop_map(Tree::Node)
            })
        ) {
            prop_assert!(depth(&t) <= 5, "depth {} for {:?}", depth(&t), t);
        }
    }
}
